"""TTL'd result store: completed responses awaiting pickup.

A fleet backend cannot hold every historical result for every tenant;
responses live for a bounded time after completion and are then
evicted.  Eviction is driven by the service clock (logical by default),
so tests can observe and control expiry deterministically.

The store optionally carries a **spill tier**: with a ``spill_dir`` and
a finite ``memory_budget``, the hottest ``memory_budget`` responses
stay in memory and older ones are spilled to disk in the
npz+JSON-sidecar format of :mod:`repro.serve.persist` (itself borrowed
from :mod:`repro.traces.io`), then transparently faulted back on
:meth:`get`.  TTL eviction is unified across both tiers: an expired
entry disappears from memory *and* disk in the same scan.

The entry dict is kept ordered by expiry — puts happen at
monotonically non-decreasing times, and a re-put of an existing id
moves the key to the end — so the eviction scan may stop at the first
unexpired entry.  (An earlier version left re-put keys in their old
position, which broke that monotonicity and let the early ``break``
strand expired entries sitting behind a refreshed one.)
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import JournalError, ServiceError
from repro.serve import persist
from repro.serve.submission import Response


class ResultStore:
    """Responses keyed by submission id, evicted ``ttl`` after storing.

    Args:
        ttl: Clock units a response stays fetchable after completion.
        spill_dir: Directory for the disk tier; ``None`` (default)
            keeps everything in memory and never spills.
        memory_budget: With a spill tier, how many responses stay
            resident; beyond that, the entries furthest from expiry
            eviction (the oldest) spill to disk.

    Raises:
        ServiceError: on a non-positive TTL or memory budget, or a
            memory budget without a spill directory.
    """

    def __init__(
        self,
        ttl: float,
        spill_dir: Optional[Union[str, Path]] = None,
        memory_budget: Optional[int] = None,
    ):
        if ttl <= 0:
            raise ServiceError(f"result TTL must be positive, got {ttl}")
        if memory_budget is not None:
            if spill_dir is None:
                raise ServiceError(
                    "memory_budget requires a spill_dir to spill into"
                )
            if memory_budget < 1:
                raise ServiceError(
                    f"memory_budget must be >= 1, got {memory_budget}"
                )
        self.ttl = float(ttl)
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.memory_budget = memory_budget
        self.spill_writes = 0
        self.spill_reads = 0
        # Ordered by expiry: puts happen at monotonically non-decreasing
        # times and a re-put moves its key to the end, so the eviction
        # scan may stop at the first unexpired entry.  A ``None``
        # response means the payload lives in the spill tier.
        self._entries: Dict[int, Tuple[float, Optional[Response]]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def spilled_count(self) -> int:
        """Entries whose payload currently lives on disk."""
        return sum(
            1 for _, response in self._entries.values() if response is None
        )

    def put(self, submission_id: int, response: Response, now: float) -> None:
        """Store one terminal response.

        A re-put of an existing id refreshes its TTL and moves the key
        to the end of the expiry order (the fix for the stranded-entry
        eviction bug); any stale spill file for the id is dropped so
        the disk tier never shadows a newer payload.
        """
        if submission_id in self._entries:
            _, old = self._entries.pop(submission_id)
            if old is None and self.spill_dir is not None:
                persist.delete_response(self.spill_dir, submission_id)
        self._entries[submission_id] = (now + self.ttl, response)
        self._maybe_spill()

    def _maybe_spill(self, keep: Optional[int] = None) -> None:
        if self.memory_budget is None:
            return
        resident = [
            sid
            for sid, (_, response) in self._entries.items()
            if response is not None
        ]
        excess = max(0, len(resident) - self.memory_budget)
        # Spill from the front: entries closest to expiry go to disk
        # first, keeping the most recently stored responses hot.  The
        # entry a get() just faulted back is hot by definition, so it
        # never bounces straight back to disk.
        candidates = [sid for sid in resident if sid != keep]
        for sid in candidates[:excess]:
            expiry, response = self._entries[sid]
            persist.save_response(self.spill_dir, sid, response, expiry)
            self._entries[sid] = (expiry, None)
            self.spill_writes += 1

    def get(self, submission_id: int, now: float) -> Optional[Response]:
        """The response, or ``None`` once expired / never stored.

        Spilled responses are faulted back from disk (and stay
        resident, possibly spilling a colder entry to make room).
        """
        entry = self._entries.get(submission_id)
        if entry is None:
            return None
        expiry, response = entry
        if now >= expiry:
            self._drop(submission_id)
            return None
        if response is None:
            response = persist.load_response(self.spill_dir, submission_id)
            self.spill_reads += 1
            persist.delete_response(self.spill_dir, submission_id)
            self._entries[submission_id] = (expiry, response)
            self._maybe_spill(keep=submission_id)
        return response

    def _drop(self, submission_id: int) -> None:
        _, response = self._entries.pop(submission_id)
        if response is None and self.spill_dir is not None:
            persist.delete_response(self.spill_dir, submission_id)

    def evict_expired(self, now: float) -> int:
        """Drop every expired response (both tiers); returns the count."""
        expired: List[int] = []
        for submission_id, (expiry, _) in self._entries.items():
            if now >= expiry:
                expired.append(submission_id)
            else:
                break
        for submission_id in expired:
            self._drop(submission_id)
        return len(expired)

    def close(self) -> None:
        """Remove every spill file this store still owns."""
        if self.spill_dir is None:
            return
        for submission_id, (_, response) in self._entries.items():
            if response is None:
                persist.delete_response(self.spill_dir, submission_id)


# Re-exported for callers that treat spill integrity failures
# specially; faulting a corrupted spill file back raises this.
__all__ = ["ResultStore", "JournalError"]
