"""Submissions and structured responses of the fleet serving layer.

A :class:`Submission` is what one device-resident sensor manager sends
to the backend: *whose* request it is (tenant), *what* to evaluate (a
registry application, or a wake-up condition already lowered to textual
IL — the wire form the phone-side manager would push to its hub), and
*where* to evaluate it (a trace name, a hub catalog choice, the feed
chunking).

Every outcome is a value, never an exception: :class:`Rejected` at
admission time, then exactly one of :class:`Completed`,
:class:`Failed` or :class:`Cancelled` per accepted ticket.  Structured
responses are the contract that lets one tenant's malformed condition
or exhausted quota coexist with another tenant's batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple, Union

from repro.hub.runtime import WakeEvent
from repro.sim.results import SimulationResult


class Lane(Enum):
    """Scheduling priority of a submission.

    INTERACTIVE is for small latency-sensitive requests (a developer
    iterating on one condition); BULK is for fleet sweeps.  The queue
    reserves capacity for the interactive lane and always serves it
    first, so a bulk flood cannot starve interactive tenants.
    """

    INTERACTIVE = "interactive"
    BULK = "bulk"


@dataclass(frozen=True)
class Submission:
    """One tenant request: evaluate a wake-up condition over a trace.

    Exactly one of ``app`` / ``il`` must be set:

    * ``app`` names a registry application; the service runs the full
      Sidewinder configuration (hub condition + precise detector +
      power accounting) and completes with a
      :class:`~repro.sim.results.SimulationResult`.
    * ``il`` carries raw intermediate-language text — the wire form a
      phone pushes to its hub.  The service runs the condition on the
      simulated hub only and completes with the wake-event tuple.

    Attributes:
        tenant: Tenant (device/app installation) identifier.
        trace: Name of a trace in the service's registry.
        app: Registry application name, or ``None``.
        il: IL program text, or ``None``.
        chunk_seconds: Hub feed chunking for raw-IL runs (application
            runs always use the engine default so they stay
            bit-identical to direct Sidewinder runs).
        hub: Hub catalog choice, a key of
            :data:`repro.serve.scheduler.HUB_CATALOGS`.
        lane: Scheduling priority lane.
    """

    tenant: str
    trace: str
    app: Optional[str] = None
    il: Optional[str] = None
    chunk_seconds: float = 4.0
    hub: str = "default"
    lane: Lane = Lane.BULK

    @property
    def kind(self) -> str:
        """``"app"`` or ``"il"`` — which payload the submission carries."""
        return "app" if self.app is not None else "il"


@dataclass(frozen=True)
class Ticket:
    """Receipt for an accepted submission.

    Attributes:
        submission_id: Service-assigned identifier; the key results are
            fetched under.
        tenant: The submitting tenant.
        submitted_at: Service-clock time of acceptance.
    """

    submission_id: int
    tenant: str
    submitted_at: float


@dataclass(frozen=True)
class Rejected:
    """Admission control refused a submission — a value, not an error.

    Attributes:
        tenant: The submitting tenant.
        reason: Machine-readable reason code — one of
            ``queue_full``, ``bulk_backpressure``, ``tenant_quota``,
            ``tenant_budget``, ``unknown_app``, ``unknown_trace``,
            ``unknown_hub``, ``malformed``, ``shutdown``,
            ``degraded`` (the shard's health monitor is shedding new
            batch work), ``journal_unavailable`` (the write-ahead
            journal could not make the acceptance durable).
        detail: Human-readable explanation.
    """

    tenant: str
    reason: str
    detail: str = ""


#: What a completed submission evaluates to: a full simulation result
#: (application submissions) or the hub wake events (raw-IL ones).
ServeResult = Union[SimulationResult, Tuple[WakeEvent, ...]]


@dataclass(frozen=True)
class Completed:
    """A submission ran (or coalesced onto an identical run) successfully.

    Attributes:
        ticket: The submission's receipt.
        result: The simulation result or wake-event tuple.  Coalesced
            submissions share the payer's result object — bit-identical
            by construction.
        dedup: True when this submission never touched the engine: an
            identical (fingerprint, trace) work item paid for the run.
        latency: Service-clock time between acceptance and completion.
    """

    ticket: Ticket
    result: ServeResult
    dedup: bool = False
    latency: float = 0.0


@dataclass(frozen=True)
class Failed:
    """A submission was accepted but could not run.

    The error taxonomy is the library's own
    (:mod:`repro.errors`): ``error_type`` is the
    :class:`~repro.errors.SidewinderError` subclass name the validation
    or execution raised, captured per request so the rest of the batch
    is untouched.

    Attributes:
        ticket: The submission's receipt.
        error_type: Exception class name (e.g. ``ILSyntaxError``).
        message: The exception message.
        latency: Service-clock time between acceptance and the failure.
    """

    ticket: Ticket
    error_type: str
    message: str
    latency: float = 0.0


@dataclass(frozen=True)
class Cancelled:
    """A queued submission the service shut down before running.

    Attributes:
        ticket: The submission's receipt.
        reason: Why it never ran (currently always ``shutdown``).
    """

    ticket: Ticket
    reason: str = "shutdown"


#: Every terminal state an accepted ticket can reach.
Response = Union[Completed, Failed, Cancelled]
