"""Service observability: the logical clock and the metrics snapshot.

Everything the service measures is driven by an injectable clock so
load tests are bit-for-bit reproducible.  The default
:class:`LogicalClock` advances only when the service tells it to (one
tick per submission, one per scheduling round), making "latency" a
deterministic count of scheduling rounds a submission waited — the
quantity admission control actually manages — rather than wall time.
Embedders that want wall-clock metrics pass ``time.monotonic``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


class LogicalClock:
    """A deterministic event-count clock.

    ``now()`` reads the current time; ``tick()`` advances it.  The
    service ticks once per accepted submission and once per scheduling
    round, so identical workloads produce identical latencies.
    """

    def __init__(self, start: float = 0.0, step: float = 1.0):
        self._now = float(start)
        self._step = float(step)

    def __call__(self) -> float:
        return self._now

    def now(self) -> float:
        """Current logical time."""
        return self._now

    def tick(self) -> float:
        """Advance one step; returns the new time."""
        self._now += self._step
        return self._now


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    Args:
        values: Sample values (need not be sorted).
        q: Percentile in ``[0, 100]``.

    Returns:
        0.0 for an empty sample, matching "no completed requests yet".
    """
    if not values:
        return 0.0
    return percentile_sorted(sorted(values), q)


def percentile_sorted(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an *already sorted* sample.

    Sorting dominates :func:`percentile` on large samples, and a
    snapshot asks for several quantiles of the same latency list — so
    callers sort once and index repeatedly through this.
    """
    if not ordered:
        return 0.0
    if q <= 0:
        return ordered[0]
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without float drift
    return ordered[min(int(rank), len(ordered)) - 1]


@dataclass(frozen=True)
class MetricsSnapshot:
    """Point-in-time counters of one :class:`~repro.serve.service.ConditionService`.

    Attributes:
        submitted: All ``submit()`` calls, accepted or not.
        accepted: Submissions that received a ticket.
        rejected: Admission rejections, keyed by reason code.
        completed: Tickets resolved with a result.
        failed: Tickets resolved with a structured per-request error.
        cancelled: Tickets the shutdown path never ran.
        engine_runs: Unique work items actually executed.
        dedup_hits: Completed submissions served by coalescing onto an
            identical work item instead of running.
        dedup_hit_rate: ``dedup_hits / completed`` (0 when nothing
            completed).
        latency_p50 / latency_p90 / latency_p99 / latency_p999:
            Percentiles of completion latency in clock units
            (scheduling rounds under the default logical clock);
            ``latency_p999`` is p99.9, the overload-sweep tail.
        queue_depth: Submissions queued at snapshot time.
        store_size: Unexpired responses held by the result store.
        store_spilled: Of those, how many currently live in the spill
            tier on disk.
        journal_errors: Write-ahead-journal append/flush failures
            (injected or real) the service survived.
        batch_rounds: Tensor-major hub dispatches the engine ran for
            this service — batched executions, not per-trace runs.
        batched_cells: Per-trace hub runs those dispatches covered
            (``batched_cells / batch_rounds`` is the mean batch size).
        shape_rounds: Shape-keyed heterogeneous dispatches — batched
            executions mixing different fingerprints of one graph
            shape.
        shape_cells: Per-trace hub runs those shape dispatches covered
            (``shape_cells / shape_rounds`` is the mean shape-batch
            occupancy).
        batch_padded_cells / batch_valid_cells: Allocated vs valid
            channel-tensor cells across every stacked dispatch; their
            ratio is the padding waste the engine's splitting guard
            keeps bounded.
        health_state: The :class:`~repro.serve.health.HealthMonitor`
            verdict (``"healthy"`` / ``"degraded"``) at snapshot time.
        health_transitions: Every ``(now, from, to)`` health transition
            so far, in order — deterministic under the logical clock.
        stream_chunks: Device chunks applied to stream buffers.
        stream_subscriptions: Streaming subscriptions registered.
        stream_backlog: Samples pushed but not yet walked by every
            subscription of their stream — the ingestion backlog at
            snapshot time.
        stream_lag_s: Worst per-subscription chunk lag in stream
            seconds: how far the furthest-behind subscription's cursor
            trails its stream's timeline end.
        stream_rounds: Incremental-round dispatches the streaming path
            ran (stacked ``advance_rows`` calls plus single-state and
            replay advances).
        stream_cells: Per-subscription advances those dispatches
            covered; ``stream_cells / stream_rounds`` is the
            incremental-round occupancy.
    """

    submitted: int
    accepted: int
    rejected: Dict[str, int]
    completed: int
    failed: int
    cancelled: int
    engine_runs: int
    dedup_hits: int
    dedup_hit_rate: float
    latency_p50: float
    latency_p90: float
    latency_p99: float
    queue_depth: int
    store_size: int
    latency_p999: float = 0.0
    store_spilled: int = 0
    journal_errors: int = 0
    health_state: str = "healthy"
    health_transitions: Tuple[Tuple[float, str, str], ...] = ()
    batch_rounds: int = 0
    batched_cells: int = 0
    shape_rounds: int = 0
    shape_cells: int = 0
    batch_padded_cells: int = 0
    batch_valid_cells: int = 0
    stream_chunks: int = 0
    stream_subscriptions: int = 0
    stream_backlog: int = 0
    stream_lag_s: float = 0.0
    stream_rounds: int = 0
    stream_cells: int = 0

    @property
    def rejected_total(self) -> int:
        """All rejections across reasons."""
        return sum(self.rejected.values())

    @property
    def batch_occupancy(self) -> float:
        """Mean per-trace runs per batched dispatch (0 when none ran)."""
        return self.batched_cells / self.batch_rounds if self.batch_rounds else 0.0

    @property
    def shape_occupancy(self) -> float:
        """Mean per-trace runs per shape dispatch (0 when none ran)."""
        return self.shape_cells / self.shape_rounds if self.shape_rounds else 0.0

    @property
    def batch_padding_ratio(self) -> float:
        """Allocated over valid stacked cells (1.0 means zero waste)."""
        if self.batch_valid_cells <= 0:
            return 1.0
        return self.batch_padded_cells / self.batch_valid_cells

    @property
    def stream_occupancy(self) -> float:
        """Mean subscription advances per incremental-round dispatch."""
        return self.stream_cells / self.stream_rounds if self.stream_rounds else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Snapshot as a plain dict (for logs and benchmark artifacts)."""
        return {
            "submitted": self.submitted,
            "accepted": self.accepted,
            "rejected": dict(self.rejected),
            "rejected_total": self.rejected_total,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "engine_runs": self.engine_runs,
            "dedup_hits": self.dedup_hits,
            "dedup_hit_rate": self.dedup_hit_rate,
            "latency_p50": self.latency_p50,
            "latency_p90": self.latency_p90,
            "latency_p99": self.latency_p99,
            "latency_p999": self.latency_p999,
            "queue_depth": self.queue_depth,
            "store_size": self.store_size,
            "store_spilled": self.store_spilled,
            "journal_errors": self.journal_errors,
            "batch_rounds": self.batch_rounds,
            "batched_cells": self.batched_cells,
            "batch_occupancy": self.batch_occupancy,
            "shape_rounds": self.shape_rounds,
            "shape_cells": self.shape_cells,
            "shape_occupancy": self.shape_occupancy,
            "batch_padded_cells": self.batch_padded_cells,
            "batch_valid_cells": self.batch_valid_cells,
            "batch_padding_ratio": self.batch_padding_ratio,
            "stream_chunks": self.stream_chunks,
            "stream_subscriptions": self.stream_subscriptions,
            "stream_backlog": self.stream_backlog,
            "stream_lag_s": self.stream_lag_s,
            "stream_rounds": self.stream_rounds,
            "stream_cells": self.stream_cells,
            "stream_occupancy": self.stream_occupancy,
            "health_state": self.health_state,
            "health_transitions": [
                list(transition) for transition in self.health_transitions
            ],
        }

    def describe(self) -> str:
        """Multi-line human-readable report."""
        rejected = (
            ", ".join(f"{k}={v}" for k, v in sorted(self.rejected.items()))
            or "none"
        )
        return "\n".join(
            [
                f"submitted {self.submitted} | accepted {self.accepted} | "
                f"rejected {self.rejected_total} ({rejected})",
                f"completed {self.completed} | failed {self.failed} | "
                f"cancelled {self.cancelled}",
                f"engine runs {self.engine_runs} | dedup hits "
                f"{self.dedup_hits} | dedup hit-rate {self.dedup_hit_rate:.1%}",
                f"batch rounds {self.batch_rounds} | batched cells "
                f"{self.batched_cells} | occupancy {self.batch_occupancy:.1f}",
                f"shape rounds {self.shape_rounds} | shape cells "
                f"{self.shape_cells} | occupancy {self.shape_occupancy:.1f} | "
                f"padding ratio {self.batch_padding_ratio:.2f}",
                f"stream chunks {self.stream_chunks} | subs "
                f"{self.stream_subscriptions} | backlog "
                f"{self.stream_backlog} | lag {self.stream_lag_s:.2f}s | "
                f"rounds {self.stream_rounds} | occupancy "
                f"{self.stream_occupancy:.1f}",
                f"latency p50/p90/p99/p99.9 {self.latency_p50:g}/"
                f"{self.latency_p90:g}/{self.latency_p99:g}/"
                f"{self.latency_p999:g} rounds",
                f"queue depth {self.queue_depth} | stored results "
                f"{self.store_size} ({self.store_spilled} spilled)",
                f"health {self.health_state} | transitions "
                f"{len(self.health_transitions)} | journal errors "
                f"{self.journal_errors}",
            ]
        )


@dataclass
class MetricsRecorder:
    """Mutable counters the service updates as requests flow through."""

    submitted: int = 0
    accepted: int = 0
    rejected: Dict[str, int] = field(default_factory=dict)
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    engine_runs: int = 0
    dedup_hits: int = 0
    latencies: List[float] = field(default_factory=list)

    def on_rejected(self, reason: str) -> None:
        """Count one admission rejection."""
        self.rejected[reason] = self.rejected.get(reason, 0) + 1

    def on_completed(self, latency: float, dedup: bool) -> None:
        """Count one completion (and its coalescing outcome)."""
        self.completed += 1
        if dedup:
            self.dedup_hits += 1
        self.latencies.append(latency)

    def snapshot(
        self,
        queue_depth: int,
        store_size: int,
        store_spilled: int = 0,
        journal_errors: int = 0,
        health_state: str = "healthy",
        health_transitions: Tuple[Tuple[float, str, str], ...] = (),
        batch_rounds: int = 0,
        batched_cells: int = 0,
        shape_rounds: int = 0,
        shape_cells: int = 0,
        batch_padded_cells: int = 0,
        batch_valid_cells: int = 0,
        stream_chunks: int = 0,
        stream_subscriptions: int = 0,
        stream_backlog: int = 0,
        stream_lag_s: float = 0.0,
        stream_rounds: int = 0,
        stream_cells: int = 0,
    ) -> MetricsSnapshot:
        """Freeze the counters into a :class:`MetricsSnapshot`.

        The latency sample is sorted once here and every quantile
        indexes into that one ordering — snapshots used to re-sort the
        full list per quantile, which dominated snapshot cost on
        fleet-scale runs.
        """
        ordered = sorted(self.latencies)
        return MetricsSnapshot(
            submitted=self.submitted,
            accepted=self.accepted,
            rejected=dict(self.rejected),
            completed=self.completed,
            failed=self.failed,
            cancelled=self.cancelled,
            engine_runs=self.engine_runs,
            dedup_hits=self.dedup_hits,
            dedup_hit_rate=(
                self.dedup_hits / self.completed if self.completed else 0.0
            ),
            latency_p50=percentile_sorted(ordered, 50),
            latency_p90=percentile_sorted(ordered, 90),
            latency_p99=percentile_sorted(ordered, 99),
            latency_p999=percentile_sorted(ordered, 99.9),
            queue_depth=queue_depth,
            store_size=store_size,
            store_spilled=store_spilled,
            journal_errors=journal_errors,
            health_state=health_state,
            health_transitions=health_transitions,
            batch_rounds=batch_rounds,
            batched_cells=batched_cells,
            shape_rounds=shape_rounds,
            shape_cells=shape_cells,
            batch_padded_cells=batch_padded_cells,
            batch_valid_cells=batch_valid_cells,
            stream_chunks=stream_chunks,
            stream_subscriptions=stream_subscriptions,
            stream_backlog=stream_backlog,
            stream_lag_s=stream_lag_s,
            stream_rounds=stream_rounds,
            stream_cells=stream_cells,
        )
