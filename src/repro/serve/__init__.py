"""The fleet serving layer: a multi-tenant condition service.

The paper's deployment story (Section 3.1) is many applications on many
phones pushing wake-up conditions to a shared sensor manager; its
Section 7 anticipates concurrent pipelines merged on one hub.  This
package models the backend side of that story at fleet scale, on top of
the simulation engine (:mod:`repro.sim.engine`):

* :class:`~repro.serve.service.ConditionService` — bounded two-lane
  queue, per-tenant quotas, structured rejections, TTL'd result store,
  metrics snapshot;
* :class:`~repro.serve.scheduler.Scheduler` — validates submissions
  through the same path as a phone-side manager push, deduplicates
  identical work by IL content fingerprint + trace key (inference-server
  style request coalescing), and batches the survivors trace-major onto
  the engine's persistent pool;
* :mod:`~repro.serve.loadgen` — a deterministic seeded fleet workload
  generator (Zipf-ish popularity) behind ``repro serve-bench``;
* :mod:`~repro.serve.journal` / :mod:`~repro.serve.persist` — the
  durability tier: a CRC-framed write-ahead journal (accepts made
  durable before tickets escape, fsync batched per round) and the
  crash-atomic spill files of the result store's disk tier;
* :mod:`~repro.serve.health` / :mod:`~repro.serve.faults` — shard
  self-healing: a pump-cadence liveness monitor driving a degraded
  mode, and a deterministic fault plan that kills the service at
  planned boundaries so :meth:`ConditionService.recover` can be tested
  for bit-identical crash recovery;
* :mod:`~repro.serve.router` / :mod:`~repro.serve.cluster` — the
  sharded tier: a deterministic rendezvous-hash router over
  ``(tenant, trace)`` keys, N isolated service shards (each with its
  own engine context, pool, clock and journal) pumped concurrently,
  cross-shard metrics aggregation, and an asyncio front end whose
  ``submit`` resolves at pump time;
* :mod:`~repro.serve.openloop` — Poisson-arrival open-loop load on a
  simulated clock, the overload sweep measuring goodput and
  p50/p90/p99/p99.9 tail latency vs offered rate, and the streamed
  fleet driver with its intermittent device-connectivity model;
* :mod:`~repro.serve.ingest` — streaming ingestion: devices push
  sequence-numbered sensor chunks into per-``(tenant, stream)``
  append-only buffers, tenants register long-lived subscriptions whose
  conditions evaluate *incrementally* on each pump round (carried hub
  state, stacked batched-tier dispatches per ``batch_key``), with
  ``chunk``/``sub`` journal records making streams crash-recoverable —
  streamed wake events are bit-identical to replaying the assembled
  trace whole.

Results returned by the service are bit-identical to direct
``Sidewinder``/engine runs — the serving layer adds routing, admission
and coalescing around the engine, never arithmetic — and recovery
preserves that: re-answered and re-executed responses are byte-equal
to the uninterrupted run's.
"""

from repro.serve.faults import (
    NO_SERVICE_FAULTS,
    ServiceFaultInjector,
    ServiceFaultPlan,
)
from repro.serve.health import HealthMonitor, HealthPolicy, HealthState
from repro.serve.journal import (
    JournalScan,
    JournalWriter,
    RecoveryStats,
    read_journal,
    truncate_journal,
)
from repro.serve.cluster import (
    AsyncCluster,
    ClusterMetricsSnapshot,
    Routed,
    ShardCluster,
    shard_journal_path,
)
from repro.serve.ingest import StreamIngest, StreamSubscriptionState
from repro.serve.loadgen import (
    ClusterLoadReport,
    DeviceStreamPlan,
    LoadReport,
    LoadSpec,
    STREAM_INCREMENTAL_IL,
    STREAM_REPLAY_IL,
    StreamLoadSpec,
    assemble_stream_trace,
    completion_digest,
    fleet_workload,
    reference_result,
    response_digest,
    run_cluster_fleet,
    run_cluster_fleet_with_recovery,
    run_fleet,
    run_fleet_with_recovery,
    stream_fleet_plan,
    stream_replay_workload,
    submission_content_key,
)
from repro.serve.metrics import (
    LogicalClock,
    MetricsSnapshot,
    percentile,
    percentile_sorted,
)
from repro.serve.openloop import (
    DeviceConnectivity,
    OpenLoopReport,
    OpenLoopSpec,
    SimClock,
    StreamFleetReport,
    overload_sweep,
    poisson_arrivals,
    run_open_loop,
    run_stream_fleet,
)
from repro.serve.router import ShardRouter, route_key
from repro.serve.queue import LaneQueue
from repro.serve.quotas import AdmissionController, TenantQuota
from repro.serve.scheduler import HUB_CATALOGS, Scheduler
from repro.serve.service import ConditionService
from repro.serve.store import ResultStore
from repro.serve.submission import (
    Cancelled,
    Completed,
    Failed,
    Lane,
    Rejected,
    Response,
    ServeResult,
    Submission,
    Ticket,
)

__all__ = [
    "AdmissionController",
    "AsyncCluster",
    "Cancelled",
    "ClusterLoadReport",
    "ClusterMetricsSnapshot",
    "Completed",
    "ConditionService",
    "DeviceConnectivity",
    "DeviceStreamPlan",
    "Failed",
    "HUB_CATALOGS",
    "HealthMonitor",
    "HealthPolicy",
    "HealthState",
    "JournalScan",
    "JournalWriter",
    "Lane",
    "LaneQueue",
    "LoadReport",
    "LoadSpec",
    "LogicalClock",
    "MetricsSnapshot",
    "NO_SERVICE_FAULTS",
    "OpenLoopReport",
    "OpenLoopSpec",
    "RecoveryStats",
    "Rejected",
    "Response",
    "ResultStore",
    "Routed",
    "Scheduler",
    "ServeResult",
    "ServiceFaultInjector",
    "ServiceFaultPlan",
    "STREAM_INCREMENTAL_IL",
    "STREAM_REPLAY_IL",
    "ShardCluster",
    "ShardRouter",
    "SimClock",
    "StreamFleetReport",
    "StreamIngest",
    "StreamLoadSpec",
    "StreamSubscriptionState",
    "Submission",
    "TenantQuota",
    "Ticket",
    "assemble_stream_trace",
    "completion_digest",
    "fleet_workload",
    "overload_sweep",
    "percentile",
    "percentile_sorted",
    "poisson_arrivals",
    "read_journal",
    "reference_result",
    "response_digest",
    "route_key",
    "run_cluster_fleet",
    "run_cluster_fleet_with_recovery",
    "run_fleet",
    "run_fleet_with_recovery",
    "run_open_loop",
    "run_stream_fleet",
    "shard_journal_path",
    "stream_fleet_plan",
    "stream_replay_workload",
    "submission_content_key",
]
