"""The fleet serving layer: a multi-tenant condition service.

The paper's deployment story (Section 3.1) is many applications on many
phones pushing wake-up conditions to a shared sensor manager; its
Section 7 anticipates concurrent pipelines merged on one hub.  This
package models the backend side of that story at fleet scale, on top of
the simulation engine (:mod:`repro.sim.engine`):

* :class:`~repro.serve.service.ConditionService` — bounded two-lane
  queue, per-tenant quotas, structured rejections, TTL'd result store,
  metrics snapshot;
* :class:`~repro.serve.scheduler.Scheduler` — validates submissions
  through the same path as a phone-side manager push, deduplicates
  identical work by IL content fingerprint + trace key (inference-server
  style request coalescing), and batches the survivors trace-major onto
  the engine's persistent pool;
* :mod:`~repro.serve.loadgen` — a deterministic seeded fleet workload
  generator (Zipf-ish popularity) behind ``repro serve-bench``.

Results returned by the service are bit-identical to direct
``Sidewinder``/engine runs — the serving layer adds routing, admission
and coalescing around the engine, never arithmetic.
"""

from repro.serve.loadgen import (
    LoadReport,
    LoadSpec,
    fleet_workload,
    reference_result,
    run_fleet,
)
from repro.serve.metrics import LogicalClock, MetricsSnapshot, percentile
from repro.serve.queue import LaneQueue
from repro.serve.quotas import AdmissionController, TenantQuota
from repro.serve.scheduler import HUB_CATALOGS, Scheduler
from repro.serve.service import ConditionService
from repro.serve.store import ResultStore
from repro.serve.submission import (
    Cancelled,
    Completed,
    Failed,
    Lane,
    Rejected,
    Response,
    ServeResult,
    Submission,
    Ticket,
)

__all__ = [
    "AdmissionController",
    "Cancelled",
    "Completed",
    "ConditionService",
    "Failed",
    "HUB_CATALOGS",
    "Lane",
    "LaneQueue",
    "LoadReport",
    "LoadSpec",
    "LogicalClock",
    "MetricsSnapshot",
    "Rejected",
    "Response",
    "ResultStore",
    "Scheduler",
    "ServeResult",
    "Submission",
    "TenantQuota",
    "Ticket",
    "fleet_workload",
    "percentile",
    "reference_result",
    "run_fleet",
]
