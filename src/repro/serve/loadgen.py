"""Deterministic fleet load generator for the condition service.

Models the paper's deployment story at fleet scale: N simulated devices
(tenants), each pushing a handful of wake-up conditions against the
shared backend.  Popularity is Zipf-ish — most devices run the same few
popular (application, trace) workloads — which is exactly the regime
where fingerprint dedup pays: a thousand devices submitting the
significant-motion condition over the commute trace cost one engine
run.

Everything is a pure function of the :class:`LoadSpec` seed, so a load
run is replayable bit for bit: same submissions, same rejections, same
dedup hits, same results.
"""

from __future__ import annotations

import hashlib
import pickle
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.api.manager import validate_condition
from repro.apps import all_applications
from repro.apps.base import SensingApplication
from repro.errors import ServiceError, ServiceKilled
from repro.power.phone import NEXUS4, PhonePowerProfile
from repro.serve.journal import RecoveryStats
from repro.serve.metrics import MetricsSnapshot
from repro.serve.scheduler import HUB_CATALOGS
from repro.serve.service import ConditionService
from repro.serve.submission import (
    Completed,
    Failed,
    Lane,
    Rejected,
    Response,
    ServeResult,
    Submission,
    Ticket,
)
from repro.sim.configs.sidewinder import Sidewinder
from repro.sim.simulator import run_wakeup_condition
from repro.traces.base import Trace
from repro.traces.stream import StreamBuffer

#: Broken IL texts the generator sprinkles in to exercise the
#: per-request error path: a parse failure, a dangling node reference,
#: and an unknown opcode — each fails with a different
#: :mod:`repro.errors` type, never poisoning the batch it rides in.
INVALID_IL: Tuple[str, ...] = (
    "ACC_X -> movingAvg(id=1, params={8}",
    "ACC_X -> movingAvg(id=1, params={8}); 7 -> OUT;",
    "ACC_X -> frobnicate(id=1, params={}); 1 -> OUT;",
)

#: Valid raw-IL conditions (the wire form) for accelerometer traces —
#: what a device whose app is not in the registry would push.
VALID_ACCEL_IL: Tuple[str, ...] = (
    "ACC_X -> movingAvg(id=1, params={8}); "
    "1 -> maxThreshold(id=2, params={1.5}); 2 -> OUT;",
    "ACC_Y -> expMovingAvg(id=1, params={0.2}); "
    "1 -> minThreshold(id=2, params={-0.5}); 2 -> OUT;",
)


#: Streaming condition templates that support bounded-replay
#: incremental execution.  Each family rolls only a *liftable*
#: threshold parameter, so every instance of a family shares one
#: ``batch_key`` — subscriptions across the whole fleet advance through
#: one stacked batched-tier dispatch per family per round, which is
#: what makes round-sized streaming work batched-tier work.
STREAM_INCREMENTAL_IL: Tuple[str, ...] = tuple(
    f"ACC_X -> movingAvg(id=1, params={{10}});"
    f"1 -> minThreshold(id=2, params={{{threshold}}});"
    f"2 -> OUT;"
    for threshold in (0.2, 0.35, 0.5)
) + tuple(
    f"ACC_Y -> movingAvg(id=1, params={{12}});"
    f"1 -> maxThreshold(id=2, params={{{threshold}}});"
    f"2 -> OUT;"
    for threshold in (0.6, 0.75, 0.9)
) + (
    "ACC_X -> sustainedThreshold(id=1, params={0.2, 7}); 1 -> OUT;",
)

#: Streaming templates that fall back to whole-graph replay:
#: ``localExtrema`` with a debounce window (chunk-invariant, so it
#: replays over arbitrary arrival spans) and ``expMovingAvg`` (not
#: chunk-invariant, so it replays through the canonical round replica).
STREAM_REPLAY_IL: Tuple[str, ...] = (
    "ACC_X -> localExtrema(id=1, params={max, 0.3, 10, 3}); 1 -> OUT;",
    "ACC_X -> expMovingAvg(id=1, params={0.5});"
    "1 -> maxThreshold(id=2, params={0.1});"
    "2 -> OUT;",
)


@dataclass(frozen=True)
class LoadSpec:
    """Shape of one deterministic fleet workload.

    Attributes:
        fleet: Number of simulated devices (tenants).
        seed: Base RNG seed; everything derives from it.
        min_submissions / max_submissions: Per-device submission count
            range (inclusive).
        zipf_s: Popularity skew over (app, trace) pairs; higher is more
            head-heavy.  1.1 gives the classic "few workloads dominate"
            fleet profile.
        interactive_fraction: Probability a submission rides the
            interactive lane.
        il_fraction: Probability a submission carries raw IL instead of
            a registry application name.
        invalid_fraction: Probability a submission carries broken IL
            (exercises the structured per-request error path).
    """

    fleet: int = 100
    seed: int = 0
    min_submissions: int = 1
    max_submissions: int = 3
    zipf_s: float = 1.1
    interactive_fraction: float = 0.05
    il_fraction: float = 0.05
    invalid_fraction: float = 0.02

    def __post_init__(self) -> None:
        if self.fleet <= 0:
            raise ServiceError(f"fleet must be positive, got {self.fleet}")
        if not 1 <= self.min_submissions <= self.max_submissions:
            raise ServiceError(
                "submission range must satisfy 1 <= min <= max, got "
                f"[{self.min_submissions}, {self.max_submissions}]"
            )


def zipf_weights(n: int, s: float) -> List[float]:
    """Unnormalized Zipf weights ``1 / rank^s`` for ranks 1..n."""
    return [1.0 / (rank ** s) for rank in range(1, n + 1)]


def fleet_workload(
    spec: LoadSpec,
    apps: Sequence["SensingApplication"],
    traces: Sequence[Trace],
) -> List[Submission]:
    """The submission stream of one simulated fleet, in arrival order.

    Args:
        spec: Workload shape (seeded).
        apps: Registry applications devices may request; each is only
            aimed at traces carrying its sensors (a device does not
            push an audio condition without a microphone).
        traces: Registry traces; raw-IL submissions are only aimed at
            traces that carry accelerometer channels (matching
            :data:`VALID_ACCEL_IL`).
    """
    rng = random.Random(spec.seed)
    trace_names = [trace.name for trace in traces]
    accel_traces = [t.name for t in traces if "ACC_X" in t.data]
    pairs = [
        (app.name, trace.name)
        for app in apps
        for trace in traces
        if all(channel in trace.data for channel in app.channels)
    ]
    # One shared popularity ranking for the whole fleet: shuffle the
    # (app, trace) pairs once, then weight by rank.
    rng.shuffle(pairs)
    weights = zipf_weights(len(pairs), spec.zipf_s)

    submissions: List[Submission] = []
    for device in range(spec.fleet):
        tenant = f"device-{device:04d}"
        count = rng.randint(spec.min_submissions, spec.max_submissions)
        for _ in range(count):
            lane = (
                Lane.INTERACTIVE
                if rng.random() < spec.interactive_fraction
                else Lane.BULK
            )
            roll = rng.random()
            if roll < spec.invalid_fraction:
                submissions.append(
                    Submission(
                        tenant=tenant,
                        trace=rng.choice(trace_names),
                        il=rng.choice(INVALID_IL),
                        lane=lane,
                    )
                )
            elif roll < spec.invalid_fraction + spec.il_fraction and accel_traces:
                submissions.append(
                    Submission(
                        tenant=tenant,
                        trace=rng.choice(accel_traces),
                        il=rng.choice(VALID_ACCEL_IL),
                        lane=lane,
                    )
                )
            else:
                app, trace = rng.choices(pairs, weights=weights)[0]
                submissions.append(
                    Submission(tenant=tenant, trace=trace, app=app, lane=lane)
                )
    return submissions


@dataclass(frozen=True)
class StreamLoadSpec:
    """Shape of one deterministic streaming fleet workload.

    Attributes:
        fleet: Number of simulated devices; device ``d`` is tenant
            ``device-000d`` pushing stream ``stream-000d``.
        seed: Base RNG seed; signal content, subscription choices and
            connectivity gaps all derive from it.
        duration_s: Seconds of sensor data each device produces.
        chunk_interval_s: Seconds of data per pushed chunk — the round
            granularity of the streamed drive.
        chunk_seconds: Feed chunking the subscriptions evaluate at
            (the replay reference must use the same value).
        rate_hz: Sampling rate of every synthetic channel.
        min_subscriptions / max_subscriptions: Per-device subscription
            count range (inclusive).
        replay_fraction: Probability a subscription draws a
            whole-graph-replay template (:data:`STREAM_REPLAY_IL`)
            instead of an incremental one
            (:data:`STREAM_INCREMENTAL_IL`).
        disconnect_rate: Per-round probability a connected device drops
            off; while gone its chunks buffer on-device.
        mean_gap_rounds: Mean rounds a disconnection lasts (geometric);
            reconnection delivers the buffered chunks in one burst.
    """

    fleet: int = 20
    seed: int = 0
    duration_s: float = 32.0
    chunk_interval_s: float = 2.0
    chunk_seconds: float = 4.0
    rate_hz: float = 50.0
    min_subscriptions: int = 1
    max_subscriptions: int = 2
    replay_fraction: float = 0.2
    disconnect_rate: float = 0.1
    mean_gap_rounds: float = 2.0

    def __post_init__(self) -> None:
        if self.fleet <= 0:
            raise ServiceError(f"fleet must be positive, got {self.fleet}")
        if self.duration_s <= 0 or self.chunk_interval_s <= 0:
            raise ServiceError(
                "duration_s and chunk_interval_s must be positive"
            )
        if not 1 <= self.min_subscriptions <= self.max_subscriptions:
            raise ServiceError(
                "subscription range must satisfy 1 <= min <= max, got "
                f"[{self.min_subscriptions}, {self.max_subscriptions}]"
            )

    @property
    def rounds(self) -> int:
        """Chunks each device produces over the drive."""
        return max(1, int(round(self.duration_s / self.chunk_interval_s)))


@dataclass(frozen=True)
class DeviceStreamPlan:
    """One device's complete streaming intent, fixed before the drive.

    The plan is the shared ground truth between the streamed drive and
    the replay reference: the streamed path pushes ``chunks`` in order
    (possibly deferred by connectivity gaps) and registers
    ``submissions`` as live subscriptions; the reference assembles the
    same chunks into one trace (:func:`assemble_stream_trace`) and
    submits the same ``submissions`` over it.  Digest identity between
    the two is the streaming correctness gate.
    """

    tenant: str
    stream: str
    rate_hz: Mapping[str, float]
    chunks: Tuple[Mapping[str, np.ndarray], ...]
    submissions: Tuple[Submission, ...]


def stream_fleet_plan(spec: StreamLoadSpec) -> List[DeviceStreamPlan]:
    """The per-device streaming plans of one seeded fleet.

    Every device carries two accelerometer channels; chunk ``seq``
    covers seconds ``[seq, seq+1) * chunk_interval_s`` of the device's
    seeded signal.  Subscription ILs draw from the rolled template
    families, so many devices share each template's ``batch_key`` and
    the shard's incremental rounds batch across the fleet.
    """
    plans: List[DeviceStreamPlan] = []
    per_chunk = max(1, int(round(spec.rate_hz * spec.chunk_interval_s)))
    rounds = spec.rounds
    for device in range(spec.fleet):
        rng = random.Random(spec.seed * 1_000_003 + device)
        data_rng = np.random.default_rng(spec.seed * 7_654_321 + device)
        tenant = f"device-{device:04d}"
        stream = f"stream-{device:04d}"
        total = per_chunk * rounds
        columns = {
            "ACC_X": data_rng.normal(0.35, 0.35, total),
            "ACC_Y": data_rng.normal(0.7, 0.25, total),
        }
        chunks = tuple(
            {
                name: column[index * per_chunk:(index + 1) * per_chunk]
                for name, column in columns.items()
            }
            for index in range(rounds)
        )
        count = rng.randint(
            spec.min_subscriptions, spec.max_subscriptions
        )
        submissions = tuple(
            Submission(
                tenant=tenant,
                trace=stream,
                il=rng.choice(
                    STREAM_REPLAY_IL
                    if rng.random() < spec.replay_fraction
                    else STREAM_INCREMENTAL_IL
                ),
                chunk_seconds=spec.chunk_seconds,
            )
            for _ in range(count)
        )
        plans.append(
            DeviceStreamPlan(
                tenant=tenant,
                stream=stream,
                rate_hz={
                    "ACC_X": spec.rate_hz, "ACC_Y": spec.rate_hz,
                },
                chunks=chunks,
                submissions=submissions,
            )
        )
    return plans


def assemble_stream_trace(plan: DeviceStreamPlan) -> Trace:
    """A plan's chunks assembled into the whole-trace replay reference.

    Built through the same :class:`~repro.traces.stream.StreamBuffer`
    machinery the serving shard uses, so the assembled channel arrays
    and timeline are bitwise what the streamed path saw.
    """
    buffer = StreamBuffer(plan.stream, dict(plan.rate_hz))
    for seq, chunk in enumerate(plan.chunks):
        buffer.push(seq, chunk)
    return buffer.to_trace()


def stream_replay_workload(
    plans: Sequence[DeviceStreamPlan],
) -> Tuple[Dict[str, Trace], List[Submission]]:
    """The replay-whole-trace equivalent of a streamed fleet drive.

    Returns the trace registry (every device's assembled stream) and
    the submission list (every plan's subscriptions, as ordinary raw-IL
    submissions over the assembled traces).  Drive these through
    :func:`run_cluster_fleet` and the
    :func:`completion_digest` of the report's pairs must equal the
    streamed drive's digest — same fleet, same seed, same events.
    """
    traces = {plan.stream: assemble_stream_trace(plan) for plan in plans}
    submissions = [
        submission for plan in plans for submission in plan.submissions
    ]
    return traces, submissions


@dataclass
class LoadReport:
    """Outcome of driving one workload through a service.

    Attributes:
        submitted: Submissions offered to the service.
        tickets: Submissions that were accepted.
        rejections: Structured admission refusals, in arrival order.
        responses: Terminal responses, in completion order.
        by_ticket: Accepted submissions keyed by submission id — what
            :func:`reference_result` verifies completions against.
        wall_s: Wall-clock seconds the drive took (submission +
            scheduling, engine included).
        metrics: The service's final metrics snapshot.
    """

    submitted: int = 0
    tickets: int = 0
    rejections: List[Rejected] = field(default_factory=list)
    responses: List[Response] = field(default_factory=list)
    by_ticket: Dict[int, Submission] = field(default_factory=dict)
    wall_s: float = 0.0
    metrics: MetricsSnapshot = None  # type: ignore[assignment]

    @property
    def completed(self) -> List[Completed]:
        """Responses that carry a result."""
        return [r for r in self.responses if isinstance(r, Completed)]

    @property
    def failed(self) -> List[Failed]:
        """Responses that carry a structured per-request error."""
        return [r for r in self.responses if isinstance(r, Failed)]

    @property
    def submissions_per_second(self) -> float:
        """Sustained submission throughput over the drive."""
        return self.submitted / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Benchmark-artifact form."""
        return {
            "submitted": self.submitted,
            "accepted": self.tickets,
            "rejected": len(self.rejections),
            "completed": len(self.completed),
            "failed": len(self.failed),
            "wall_s": self.wall_s,
            "submissions_per_sec": self.submissions_per_second,
            "metrics": self.metrics.as_dict() if self.metrics else None,
        }


def reference_result(
    submission: Submission,
    traces: Mapping[str, Trace],
    profile: PhonePowerProfile = NEXUS4,
) -> ServeResult:
    """The direct-engine answer for one submission, computed fresh.

    No shared context, no pool, no memo — exactly what a developer gets
    running the same condition by hand.  Service completions must equal
    this bit for bit (the serving layer adds routing, never
    arithmetic); CI's serve smoke job fails on any mismatch.
    """
    trace = traces[submission.trace]
    if submission.kind == "app":
        apps = {app.name: app for app in all_applications()}
        config = Sidewinder(catalog=HUB_CATALOGS[submission.hub])
        return config.run(apps[submission.app or ""], trace, profile)
    _, graph, _ = validate_condition(
        submission.il or "", HUB_CATALOGS[submission.hub]
    )
    return tuple(
        run_wakeup_condition(graph, trace, submission.chunk_seconds)
    )


def run_fleet(
    service: ConditionService,
    submissions: Sequence[Submission],
    pump_every: int = 32,
) -> LoadReport:
    """Drive a workload through a service, interleaving pumps.

    Pumping every ``pump_every`` submissions keeps the bounded queue
    from saturating into pure rejection while still giving the
    scheduler full batches to coalesce — the steady-state a real
    backend runs in.  Ends with a full drain, so every accepted
    submission reaches a terminal response.
    """
    report = LoadReport()
    started = time.perf_counter()
    for i, submission in enumerate(submissions):
        outcome = service.submit(submission)
        report.submitted += 1
        if isinstance(outcome, Rejected):
            report.rejections.append(outcome)
        else:
            report.tickets += 1
            report.by_ticket[outcome.submission_id] = submission
        if (i + 1) % max(1, pump_every) == 0:
            report.responses.extend(service.pump())
    report.responses.extend(service.drain())
    report.wall_s = time.perf_counter() - started
    report.metrics = service.metrics()
    return report


def response_digest(responses: Iterable[Response]) -> str:
    """Order-insensitive SHA-256 digest over terminal responses.

    Each response is pickled on its own (so shared result objects
    serialize identically regardless of which responses accompany
    them), the pickles are sorted, and the digest runs over the
    concatenation.  Two drives whose responses are bit-identical as a
    *set* — the recovery guarantee — digest equal even though recovery
    reorders re-answered, re-executed and re-driven work.  Callers
    supply one response per ticket (the natural shape of a drive).
    """
    blobs = sorted(
        pickle.dumps(response, protocol=4) for response in responses
    )
    digest = hashlib.sha256()
    for blob in blobs:
        digest.update(blob)
    return digest.hexdigest()


def submission_content_key(submission: Submission) -> Tuple[object, ...]:
    """What a submission *asks for*, independent of how it is served.

    The routing-free identity of a request: who asked, which condition,
    over which trace, with which feed/hub parameters.  Two topologies
    serving the same workload agree on these keys even though their
    tickets (per-shard id counters), latencies (per-shard clocks) and
    dedup payer structure all differ.
    """
    return (
        submission.tenant,
        submission.trace,
        submission.app,
        submission.il,
        submission.chunk_seconds,
        submission.hub,
        submission.lane.value,
    )


def completion_digest(
    pairs: Iterable[Tuple[Submission, Response]],
) -> str:
    """Topology-independent digest over terminal work outcomes.

    :func:`response_digest` pickles whole responses — ticket ids,
    latencies, dedup flags included — which is the right identity for
    crash recovery (same shard, before vs after) but can never match
    across shard *topologies*: a 4-shard cluster hands out four
    independent id sequences and elects one dedup payer per shard.
    This digest instead hashes what must be invariant: for every
    terminal response, the submission's :func:`submission_content_key`
    plus the pickled **result content** (the simulation result or
    wake-event tuple for completions; the error type and message for
    failures; the reason for cancellations).  Blobs are sorted, so the
    digest is order-insensitive like :func:`response_digest`.

    N-shard completions digest-equal the 1-shard reference iff every
    submission produced bit-identical result content — the cluster
    acceptance gate.  Admission outcomes (rejections) are *not*
    covered: quotas and queue bounds are enforced per shard, so under
    overload they are genuinely topology-dependent.

    The key and the payload are pickled *separately* per blob: a
    single combined pickle would memoize strings shared between the
    submission key and a fresh engine result, while a journal-replayed
    result (already pickle round-tripped) holds equal-but-distinct
    strings — same content, different bytes.  Separate pickles hash
    content only, so recovered runs digest-equal uninterrupted ones.
    """
    blobs = []
    for submission, response in pairs:
        key = pickle.dumps(submission_content_key(submission), protocol=4)
        if isinstance(response, Completed):
            kind = b"completed"
            payload: object = response.result
        elif isinstance(response, Failed):
            kind = b"failed"
            payload = (response.error_type, response.message)
        else:
            kind = b"cancelled"
            payload = response.reason
        blobs.append(kind + key + pickle.dumps(payload, protocol=4))
    digest = hashlib.sha256()
    for blob in sorted(blobs):
        digest.update(blob)
    return digest.hexdigest()


@dataclass
class ClusterLoadReport:
    """Outcome of driving one workload through a shard cluster.

    Attributes:
        submitted: Submissions offered to the cluster.
        tickets: Submissions some shard accepted.
        rejections: ``(shard, rejection)`` refusals, in arrival order.
        responses: ``(shard, response)`` terminal responses, in
            completion order.
        by_ticket: Accepted submissions keyed by their *global* key —
            ``(shard, submission_id)`` — since shard id counters are
            independent.
        wall_s: Wall-clock seconds the drive took.
        metrics: The cluster's final merged + per-shard snapshot.
    """

    submitted: int = 0
    tickets: int = 0
    rejections: List[Tuple[int, Rejected]] = field(default_factory=list)
    responses: List[Tuple[int, Response]] = field(default_factory=list)
    by_ticket: Dict[Tuple[int, int], Submission] = field(default_factory=dict)
    wall_s: float = 0.0
    metrics: object = None  # ClusterMetricsSnapshot

    @property
    def completed(self) -> List[Completed]:
        """Responses that carry a result, across shards."""
        return [r for _, r in self.responses if isinstance(r, Completed)]

    @property
    def pairs(self) -> List[Tuple[Submission, Response]]:
        """(submission, response) pairs for :func:`completion_digest`."""
        return [
            (self.by_ticket[(shard, response.ticket.submission_id)], response)
            for shard, response in self.responses
        ]

    @property
    def submissions_per_second(self) -> float:
        """Sustained submission throughput over the drive."""
        return self.submitted / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Benchmark-artifact form."""
        return {
            "submitted": self.submitted,
            "accepted": self.tickets,
            "rejected": len(self.rejections),
            "completed": len(self.completed),
            "wall_s": self.wall_s,
            "submissions_per_sec": self.submissions_per_second,
            "metrics": self.metrics.as_dict() if self.metrics else None,
        }


def run_cluster_fleet(
    cluster: "ShardCluster",
    submissions: Sequence[Submission],
    pump_every: int = 32,
) -> ClusterLoadReport:
    """Drive a workload through a cluster, interleaving cluster pumps.

    The cluster analogue of :func:`run_fleet`: same closed-loop shape
    (submit ``pump_every``, pump, repeat, then drain), but each pump is
    one concurrent scheduling round across every shard.  Per-shard
    pump cadence therefore *scales with the shard count* — N shards
    consume up to ``N × batch_size`` submissions per boundary — which
    is exactly the capacity model the throughput benchmark measures.
    """
    report = ClusterLoadReport()
    started = time.perf_counter()
    for i, submission in enumerate(submissions):
        routed = cluster.submit(submission)
        report.submitted += 1
        if isinstance(routed.response, Rejected):
            report.rejections.append((routed.shard, routed.response))
        else:
            report.tickets += 1
            report.by_ticket[
                (routed.shard, routed.response.submission_id)
            ] = submission
        if (i + 1) % max(1, pump_every) == 0:
            for shard, responses in cluster.pump().items():
                report.responses.extend(
                    (shard, response) for response in responses
                )
    for shard, responses in cluster.drain().items():
        report.responses.extend((shard, response) for response in responses)
    report.wall_s = time.perf_counter() - started
    report.metrics = cluster.metrics()
    return report


def run_cluster_fleet_with_recovery(
    cluster: "ShardCluster",
    submissions: Sequence[Submission],
    pump_every: int = 32,
) -> Tuple[ClusterLoadReport, Dict[int, RecoveryStats]]:
    """Drive a cluster whose shards may be fault-killed at pump time.

    Behaves exactly like :func:`run_cluster_fleet` when no fault plan
    fires.  When a shard's :class:`~repro.serve.faults.ServiceFaultPlan`
    kills it during a pump (the cluster marks it dead instead of
    propagating), the driver immediately rebuilds that shard from its
    own journal via :meth:`ShardCluster.recover_shard` — the other
    shards never notice.  Durable completions the crash re-answered
    and the interrupted round's re-executed responses come out of
    :class:`~repro.serve.journal.RecoveryStats`; responses are keyed
    by ``(shard, submission_id)``, so a re-answered response simply
    overwrites its (bit-identical) original.

    Only **pump-phase** kills are supported here: an accept-time kill
    raises out of ``submit`` before routing bookkeeping completes and
    needs the single-shard :func:`run_fleet_with_recovery` resume
    logic instead.

    Returns:
        ``(report, stats_by_shard)`` — the merged report (one response
        per accepted ticket) and each recovered shard's last
        :class:`RecoveryStats`.
    """
    report = ClusterLoadReport()
    started = time.perf_counter()
    responses: Dict[Tuple[int, int], Response] = {}
    stats_by_shard: Dict[int, RecoveryStats] = {}

    def record(shard: int, batch: Sequence[Response]) -> None:
        for response in batch:
            responses[(shard, response.ticket.submission_id)] = response

    def recover_dead() -> None:
        for shard in cluster.dead_shards:
            stats = cluster.recover_shard(shard)
            stats_by_shard[shard] = stats
            record(shard, stats.replayed)
            record(shard, stats.reexecuted)

    for i, submission in enumerate(submissions):
        routed = cluster.submit(submission)
        report.submitted += 1
        if isinstance(routed.response, Rejected):
            report.rejections.append((routed.shard, routed.response))
        else:
            report.tickets += 1
            report.by_ticket[
                (routed.shard, routed.response.submission_id)
            ] = submission
        if (i + 1) % max(1, pump_every) == 0:
            for shard, batch in cluster.pump().items():
                record(shard, batch)
            recover_dead()
    while any(
        cluster.shard(shard).queue_depth
        for shard in range(cluster.shards)
        if shard not in cluster.dead_shards
    ):
        for shard, batch in cluster.pump().items():
            record(shard, batch)
        recover_dead()

    report.responses = [
        (shard, responses[(shard, sid)])
        for shard, sid in sorted(responses)
    ]
    report.wall_s = time.perf_counter() - started
    report.metrics = cluster.metrics()
    return report, stats_by_shard


def run_fleet_with_recovery(
    service: ConditionService,
    submissions: Sequence[Submission],
    traces: Mapping[str, Trace],
    journal: Union[str, Path],
    pump_every: int = 32,
    recover_kwargs: Optional[Dict[str, object]] = None,
) -> Tuple[LoadReport, Optional[RecoveryStats], ConditionService]:
    """Drive a workload through a crash-prone service, recovering kills.

    Behaves exactly like :func:`run_fleet` against a service whose
    fault plan never fires.  When the service's
    :class:`~repro.serve.faults.ServiceFaultPlan` kills it
    (:class:`~repro.errors.ServiceKilled`), the driver rebuilds a
    service with :meth:`ConditionService.recover` and **resumes the
    stream right after the last durable accept** — the submissions the
    crash forgot are re-driven through the recovered service, which
    (by the restored ticket counter, clock and quota state) hands out
    the same ticket ids and produces bit-identical responses and
    rejections.  Pump cadence is keyed to the global stream index, so
    resumed pumping stays aligned with the uninterrupted run.

    Args:
        service: The (possibly fault-planned) service to drive first.
        submissions: The full workload, in arrival order.
        traces: Trace registry for :meth:`ConditionService.recover`.
        journal: The journal path the service writes (and recovery
            reads).
        pump_every: Pump cadence over the global stream index.
        recover_kwargs: Extra keyword arguments for ``recover`` (quota,
            capacity, jobs, ... — pass the service's construction
            parameters so the rebuilt shard matches).

    Returns:
        ``(report, stats, service)`` — the merged load report (one
        response per accepted ticket), the last recovery's stats
        (``None`` when no kill fired), and the service left running at
        the end (callers own its shutdown).
    """
    kwargs = dict(recover_kwargs or {})
    report = LoadReport()
    started = time.perf_counter()
    svc = service
    stats: Optional[RecoveryStats] = None
    ticket_by_index: Dict[int, Ticket] = {}
    rejection_by_index: Dict[int, Rejected] = {}
    submission_by_index: Dict[int, Submission] = {}
    sid_to_index: Dict[int, int] = {}
    responses_by_sid: Dict[int, Response] = {}
    # Global stream indices at which a *non-empty* pump ran.  Queue
    # occupancy at a boundary is deterministic, so the journal's r-th
    # round record corresponds to the r-th smallest index here — which
    # is how recovery knows not to re-fire a boundary whose round is
    # already durable.
    pump_boundaries: set = set()

    def recovered() -> Tuple[ConditionService, int]:
        nonlocal stats
        new_svc, stats = ConditionService.recover(journal, traces, **kwargs)
        for response in (*stats.replayed, *stats.reexecuted):
            responses_by_sid[response.ticket.submission_id] = response
        # Resume right after the last durable accept AND the last
        # durable round's boundary; everything the crash forgot is
        # re-driven (and re-decided identically), while rounds that
        # already ran are never re-fired.
        last_sid = stats.next_id - 1
        resume = sid_to_index[last_sid] + 1 if last_sid in sid_to_index else 0
        boundaries = sorted(pump_boundaries)
        if stats.rounds > len(boundaries):
            # The extra rounds ran inside drain(), past the stream —
            # the whole stream is already driven.
            resume = len(submissions)
        elif stats.rounds > 0:
            resume = max(resume, boundaries[stats.rounds - 1] + 1)
        for index in [k for k in ticket_by_index if k >= resume]:
            sid = ticket_by_index.pop(index).submission_id
            sid_to_index.pop(sid, None)
            responses_by_sid.pop(sid, None)
        for index in [k for k in rejection_by_index if k >= resume]:
            del rejection_by_index[index]
        return new_svc, resume

    i = 0
    while i < len(submissions):
        submission = submissions[i]
        try:
            outcome = svc.submit(submission)
        except ServiceKilled:
            svc, i = recovered()
            continue
        submission_by_index[i] = submission
        if isinstance(outcome, Rejected):
            rejection_by_index[i] = outcome
        else:
            ticket_by_index[i] = outcome
            sid_to_index[outcome.submission_id] = i
        if (i + 1) % max(1, pump_every) == 0:
            if svc.queue_depth:
                pump_boundaries.add(i)
            try:
                for response in svc.pump():
                    responses_by_sid[response.ticket.submission_id] = response
            except ServiceKilled:
                svc, i = recovered()
                continue
        i += 1
    while True:
        try:
            for response in svc.drain():
                responses_by_sid[response.ticket.submission_id] = response
            break
        except ServiceKilled:
            svc, _ = recovered()

    report.submitted = len(submissions)
    report.tickets = len(ticket_by_index)
    report.rejections = [
        rejection_by_index[k] for k in sorted(rejection_by_index)
    ]
    report.by_ticket = {
        ticket_by_index[k].submission_id: submission_by_index[k]
        for k in ticket_by_index
    }
    report.responses = [
        responses_by_sid[sid] for sid in sorted(responses_by_sid)
    ]
    report.wall_s = time.perf_counter() - started
    report.metrics = svc.metrics()
    return report, stats, svc
