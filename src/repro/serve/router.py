"""Deterministic shard routing via rendezvous (HRW) hashing.

The cluster needs an assignment of submissions to shards that is

* **deterministic** — the same ``(tenant, trace)`` key always lands on
  the same shard, across processes and runs, so cluster results are
  bit-reproducible and a recovered shard sees exactly the keys it saw
  before the crash;
* **dedup-friendly** — coalescing happens *within* a shard, so keys
  that share work should co-locate.  Routing on the trace key keeps
  every submission against one recording on one shard, which is where
  the scheduler's fingerprint dedup and tensor-major batching win; and
* **stable under resizing** — growing N → N+1 shards should strand as
  little routing state as possible.

Rendezvous hashing (highest random weight, Thaler & Ravishankar 1996)
gives all three without a ring or a table: every ``(key, shard)`` pair
gets a score from a cryptographic hash, and the key lives on the shard
with the highest score.  Adding a shard only remaps the keys whose new
score beats their old maximum — an expected ``1/(N+1)`` of them — and
removing one only remaps the keys it owned.  Scores come from SHA-256,
so routing never depends on ``PYTHONHASHSEED`` or platform ``hash()``.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Tuple

from repro.errors import SidewinderError
from repro.serve.submission import Submission

__all__ = ["ShardRouter", "route_key"]


def route_key(tenant: str, trace: str) -> str:
    """The routing key for a submission: tenant plus trace name.

    The trace component dominates placement economics (work dedups by
    trace within a shard); the tenant component spreads a single
    tenant's multi-trace portfolio across shards.  ``0x1f`` (unit
    separator) keeps ``("a", "bc")`` distinct from ``("ab", "c")``.
    """
    return f"{tenant}\x1f{trace}"


class ShardRouter:
    """Stateless rendezvous router over ``shards`` numbered ``0..N-1``.

    Args:
        shards: Shard count; must be positive.
        salt: Optional namespace mixed into every score, so two
            clusters with different salts route the same keys
            differently (e.g. A/B topologies in one test).
    """

    def __init__(self, shards: int, salt: str = ""):
        if shards < 1:
            raise SidewinderError(
                f"a cluster needs at least one shard, got {shards}"
            )
        self._shards = int(shards)
        self._salt = salt

    @property
    def shards(self) -> int:
        """The shard count this router spreads keys over."""
        return self._shards

    def _score(self, key: str, shard: int) -> int:
        digest = hashlib.sha256(
            f"{self._salt}\x1f{shard}\x1f{key}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big")

    def route(self, tenant: str, trace: str) -> int:
        """The shard owning ``(tenant, trace)`` — highest score wins."""
        key = route_key(tenant, trace)
        best_shard = 0
        best_score = -1
        for shard in range(self._shards):
            score = self._score(key, shard)
            if score > best_score:
                best_score = score
                best_shard = shard
        return best_shard

    def route_submission(self, submission: Submission) -> int:
        """Route a submission by its ``(tenant, trace)`` pair."""
        return self.route(submission.tenant, submission.trace)

    def route_stream(self, tenant: str, stream: str) -> int:
        """The shard owning a device stream.

        Streams route exactly like traces — the stream name *is* the
        trace name its subscriptions carry — so every chunk of a
        device's stream, every subscription over it, and any eventual
        replay of its assembled trace all land on the same shard.
        """
        return self.route(tenant, stream)

    def assignment(
        self, keys: List[Tuple[str, str]]
    ) -> Dict[int, List[Tuple[str, str]]]:
        """Bulk-route ``(tenant, trace)`` keys; shard → its keys.

        Every shard appears in the result, owners of nothing included,
        so balance checks can iterate shards without a default.
        """
        owned: Dict[int, List[Tuple[str, str]]] = {
            shard: [] for shard in range(self._shards)
        }
        for tenant, trace in keys:
            owned[self.route(tenant, trace)].append((tenant, trace))
        return owned
