"""Streaming ingestion: devices push chunks, conditions evaluate as they land.

The serving tier so far is *replay-shaped*: a submission names a finished
recording and one engine run answers it.  Real deployments are
*stream-shaped* — a device uploads sensor data a few seconds at a time,
and its wake-up conditions should fire as the data arrives, not after
the recording ends.  :class:`StreamIngest` is that path for one shard:

* devices push sequence-numbered chunks into per-``(tenant, stream)``
  append-only :class:`~repro.traces.stream.StreamBuffer`\\ s;
* tenants register long-lived **streaming subscriptions** — the same
  wire form as a raw-IL :class:`~repro.serve.submission.Submission`,
  with the stream name in the ``trace`` field — validated through the
  same manager push path as replay submissions;
* each pump round, :meth:`advance` walks every subscription's cursor
  over the newly arrived span and evaluates *only* that span, carrying
  hub state across rounds (:mod:`repro.hub.incremental`): bounded
  replay for incremental-eligible graphs, whole-graph replay fallbacks
  otherwise.  Same-``batch_key`` subscriptions across devices and
  fingerprints advance through one stacked tensor dispatch per plan
  step, so round-sized arrivals run on the batched tier rather than
  row at a time.

The correctness contract is inherited from the execution layer: every
stream state is arrival-chunking invariant, so the concatenated event
log of a subscription is **bit-identical** to replaying the finally
assembled trace whole (at the subscription's ``chunk_seconds``) — which
is also why recovery needs no per-subscription result records: rebuild
the buffers and subscriptions from the journal's ``chunk``/``sub``
records and one catch-up :meth:`advance` re-derives every event.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.api.manager import validate_condition
from repro.errors import HubExecutionError, ServiceError
from repro.hub.incremental import (
    IncrementalGraphState,
    StreamState,
    advance_rows_with_info,
    make_stream_state,
)
from repro.hub.runtime import WakeEvent
from repro.serve.scheduler import HUB_CATALOGS
from repro.serve.submission import Submission
from repro.traces.stream import StreamBuffer

__all__ = ["StreamIngest", "StreamSubscriptionState"]


class StreamSubscriptionState:
    """One live streaming subscription on one stream.

    Attributes:
        sub_id: Shard-assigned subscription id (journal replay
            reassigns the same ids, in the same order).
        submission: The wire form — a raw-IL submission whose ``trace``
            names the stream.  This is exactly the submission a replay
            drive would send over the assembled trace, which is what
            makes streamed results digest-comparable to replayed ones.
        channels: The graph's input channels (a subset of the stream's).
        state: The incremental execution state
            (:data:`repro.hub.incremental.StreamState`).
        cursor: Per-channel consumed item counts into the stream buffer.
        events: Wake events emitted so far, in stream order.
        done: True once the stream closed under this subscription.
    """

    __slots__ = (
        "sub_id", "submission", "channels", "state", "cursor",
        "events", "done",
    )

    def __init__(
        self,
        sub_id: int,
        submission: Submission,
        channels: Tuple[str, ...],
        state: StreamState,
    ):
        self.sub_id = sub_id
        self.submission = submission
        self.channels = channels
        self.state = state
        self.cursor: Dict[str, int] = {}
        self.events: List[WakeEvent] = []
        self.done = False


class StreamIngest:
    """Per-shard streaming state: buffers, subscriptions, and the pump hook.

    Args:
        now: The shard's clock (journal records carry its stamps).
        journal_append: Optional record sink — the service's buffered
            journal append, already wrapped so a journal failure is
            counted on shard health instead of raised.  ``None`` for a
            non-durable shard.

    The service calls :meth:`advance` once per pump round; everything
    else is request-path bookkeeping.  All methods raise the library's
    own error types on bad input — the service layer turns them into
    structured :class:`~repro.serve.submission.Rejected` values.
    """

    def __init__(
        self,
        now: Callable[[], float],
        journal_append: Optional[Callable[[tuple], None]] = None,
    ):
        self._now = now
        self._journal_append = journal_append
        self._buffers: Dict[Tuple[str, str], StreamBuffer] = {}
        self._subs: Dict[int, StreamSubscriptionState] = {}
        self._by_stream: Dict[Tuple[str, str], List[int]] = {}
        self._next_sub_id = 1
        self._dirty = False
        #: Chunks applied (idempotent duplicates excluded).
        self.chunks = 0
        #: Subscriptions registered over the shard's lifetime.
        self.subscriptions = 0
        #: Incremental-round dispatches issued by :meth:`advance`.
        self.rounds = 0
        #: Subscription-rows those dispatches covered
        #: (``cells / rounds`` is the incremental-round occupancy).
        self.cells = 0

    # -- device-facing ingestion ----------------------------------------

    @property
    def dirty(self) -> bool:
        """True when pushes/subscriptions arrived since the last advance."""
        return self._dirty

    def stream_names(self) -> Tuple[Tuple[str, str], ...]:
        """Every ``(tenant, stream)`` this shard holds, sorted."""
        return tuple(sorted(self._buffers))

    def next_seq(self, tenant: str, stream: str) -> int:
        """The next chunk sequence number a stream expects (0 if unknown).

        This is the device resync point: chunks buffered by the shard
        but lost to a crash before the journal flushed simply were not
        applied after recovery, and the device re-pushes from here —
        re-pushing an already-applied ``seq`` is an idempotent no-op.
        """
        buffer = self._buffers.get((tenant, stream))
        return buffer.next_seq if buffer is not None else 0

    def push(
        self,
        tenant: str,
        stream: str,
        seq: int,
        samples: Mapping[str, np.ndarray],
        rate_hz: Optional[Mapping[str, float]] = None,
        journal: bool = True,
    ) -> bool:
        """Apply one device chunk; True when it advanced the stream.

        The first chunk of a stream must carry ``rate_hz`` (it fixes
        the channel set and timeline); later chunks may omit it.
        Journal replay calls this with ``journal=False`` so recovery
        never re-journals what it is reading.

        Raises:
            ServiceError: unknown stream with no ``rate_hz``.
            TraceError: sequence gap or unknown channel.
        """
        key = (tenant, stream)
        buffer = self._buffers.get(key)
        if buffer is None:
            if rate_hz is None:
                raise ServiceError(
                    f"stream {stream!r} of tenant {tenant!r} is unknown; "
                    "its first chunk must carry rate_hz"
                )
            buffer = StreamBuffer(stream, dict(rate_hz))
            self._buffers[key] = buffer
            self._by_stream.setdefault(key, [])
        applied = buffer.push(seq, samples)
        if not applied:
            return False
        self.chunks += 1
        self._dirty = True
        if journal and self._journal_append is not None:
            self._journal_append(
                ("chunk", tenant, stream, seq, self._now(),
                 dict(buffer.rate_hz),
                 {name: np.asarray(values) for name, values in samples.items()})
            )
        return applied

    # -- tenant-facing subscriptions ------------------------------------

    def subscribe(
        self,
        submission: Submission,
        journal: bool = True,
        sub_id: Optional[int] = None,
    ) -> int:
        """Register a streaming subscription; returns its id.

        ``submission.trace`` names the stream (which must already have
        received its first chunk — the channel set has to be known to
        validate coverage); ``submission.il`` carries the condition.
        Validation runs the same manager push path as replay
        submissions.  Journal replay passes the journaled ``sub_id`` so
        a recovered shard reassigns exactly the pre-crash ids.

        Raises:
            ServiceError: missing IL, unknown hub, or unknown stream.
            HubExecutionError: the stream lacks a channel the condition
                reads.
            SidewinderError: any IL validation/placement failure.
        """
        if submission.il is None:
            raise ServiceError(
                "streaming subscriptions carry raw IL (app submissions "
                "replay finished recordings; streams have none yet)"
            )
        if submission.hub not in HUB_CATALOGS:
            raise ServiceError(f"unknown hub {submission.hub!r}")
        if submission.chunk_seconds <= 0:
            raise ServiceError(
                f"chunk_seconds must be positive, got {submission.chunk_seconds}"
            )
        key = (submission.tenant, submission.trace)
        buffer = self._buffers.get(key)
        if buffer is None:
            raise ServiceError(
                f"stream {submission.trace!r} of tenant "
                f"{submission.tenant!r} has no chunks yet"
            )
        _, graph, _ = validate_condition(
            submission.il, HUB_CATALOGS[submission.hub]
        )
        missing = sorted(c for c in graph.channels if c not in buffer.rate_hz)
        if missing:
            raise HubExecutionError(
                f"stream {submission.trace!r} lacks channels {missing} "
                "needed by the wake-up condition"
            )
        state = make_stream_state(graph, float(submission.chunk_seconds))
        if sub_id is None:
            sub_id = self._next_sub_id
        if sub_id in self._subs:
            raise ServiceError(f"stream subscription {sub_id} already exists")
        self._next_sub_id = max(self._next_sub_id, sub_id + 1)
        sub = StreamSubscriptionState(
            sub_id, submission, tuple(sorted(graph.channels)), state
        )
        self._subs[sub_id] = sub
        self._by_stream[key].append(sub_id)
        self.subscriptions += 1
        self._dirty = True
        if journal and self._journal_append is not None:
            self._journal_append(("sub", sub_id, self._now(), submission))
        return sub_id

    def subscription(self, sub_id: int) -> StreamSubscriptionState:
        """One subscription's live state (raises on unknown id)."""
        sub = self._subs.get(sub_id)
        if sub is None:
            raise ServiceError(f"unknown stream subscription {sub_id}")
        return sub

    def results(self, sub_id: int) -> Tuple[WakeEvent, ...]:
        """Wake events a subscription has emitted so far, in order."""
        return tuple(self.subscription(sub_id).events)

    # -- the pump hook ---------------------------------------------------

    def advance(self) -> Dict[int, List[WakeEvent]]:
        """Evaluate every subscription over its newly arrived span.

        Same-``batch_key`` incremental subscriptions — across devices,
        streams and fingerprints — advance through one stacked dispatch
        per plan step; replay-fallback subscriptions advance singly.
        Returns the events produced this round, by subscription id
        (only ids that produced something appear).
        """
        self._dirty = False
        produced: Dict[int, List[WakeEvent]] = {}
        groups: Dict[tuple, List[Tuple[StreamSubscriptionState, Dict]]] = {}
        for sub_id in sorted(self._subs):
            sub = self._subs[sub_id]
            if sub.done:
                continue
            buffer = self._buffers[(sub.submission.tenant, sub.submission.trace)]
            spans, moved = buffer.spans_since(sub.cursor)
            sub.cursor = moved
            spans = {name: spans[name] for name in sub.channels}
            if all(span.is_empty for span in spans.values()):
                continue
            if isinstance(sub.state, IncrementalGraphState):
                groups.setdefault(sub.state.batch_key, []).append((sub, spans))
            else:
                events = sub.state.advance(spans)
                self.rounds += 1
                self.cells += 1
                if events:
                    sub.events.extend(events)
                    produced[sub.sub_id] = events
        for members in groups.values():
            results, info = advance_rows_with_info(
                [sub.state for sub, _ in members],
                [spans for _, spans in members],
            )
            self.rounds += info.dispatches
            self.cells += info.rows
            for (sub, _), events in zip(members, results):
                if events:
                    sub.events.extend(events)
                    produced[sub.sub_id] = events
        return produced

    def close_stream(
        self, tenant: str, stream: str
    ) -> Dict[int, Tuple[WakeEvent, ...]]:
        """End one stream: final catch-up, flush, and per-sub results.

        Runs a full :meth:`advance` first (keeping the final spans on
        the batched path alongside every other stream's arrivals), then
        closes each of the stream's subscription states and returns
        their complete event logs.  Closure is not journaled: a
        recovered shard reopens the stream and the driver re-closes —
        arrival-chunking invariance makes the re-derived logs
        bit-identical.

        Raises:
            ServiceError: unknown stream.
        """
        key = (tenant, stream)
        if key not in self._buffers:
            raise ServiceError(
                f"stream {stream!r} of tenant {tenant!r} is unknown"
            )
        self.advance()
        results: Dict[int, Tuple[WakeEvent, ...]] = {}
        for sub_id in self._by_stream[key]:
            sub = self._subs[sub_id]
            if not sub.done:
                sub.events.extend(sub.state.close())
                sub.done = True
            results[sub_id] = tuple(sub.events)
        return results

    # -- metrics ---------------------------------------------------------

    @property
    def backlog(self) -> int:
        """Samples pushed but not yet walked by every open subscription."""
        total = 0
        for sub in self._subs.values():
            if sub.done:
                continue
            counts = self._buffers[
                (sub.submission.tenant, sub.submission.trace)
            ].counts()
            total += sum(
                max(0, counts[name] - sub.cursor.get(name, 0))
                for name in sub.channels
            )
        return total

    @property
    def lag_s(self) -> float:
        """Worst chunk lag: how far the furthest-behind open
        subscription's cursor trails its stream's timeline end."""
        worst = 0.0
        for sub in self._subs.values():
            if sub.done:
                continue
            buffer = self._buffers[
                (sub.submission.tenant, sub.submission.trace)
            ]
            walked = min(
                sub.cursor.get(name, 0) / buffer.rate_hz[name]
                for name in sub.channels
            )
            worst = max(worst, buffer.end_seconds - walked)
        return worst
