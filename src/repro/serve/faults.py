"""Service-tier fault injection: kill the shard, break its journal.

The hub tier's :mod:`repro.hub.faults` breaks the system *around* a
wake-up condition — resets, lossy links, flaky interrupts.  This module
applies the same idiom one tier up: a :class:`ServiceFaultPlan` is a
pure, seedable description of where a :class:`ConditionService` process
dies and which journal appends fail; a :class:`ServiceFaultInjector`
realizes it deterministically.

Kill points map to the places a real crash hurts most:

* after the N-th accepted submission (ticket issued, journal record
  buffered but maybe not flushed);
* at a chosen pump round, in one of three phases — ``"begin"`` (round
  record flushed, nothing executed), ``"store"`` (results computed and
  stored in memory, completion records *not yet durable*), ``"end"``
  (completions buffered, final flush skipped);
* mid-journal-append, by tearing a configured number of bytes of the
  buffered tail into the file (``torn_tail_bytes``), which is how the
  torn-record recovery path gets exercised end to end.

Journal I/O errors come in two flavours: a deterministic set of append
indices (``journal_error_appends``) and a seeded per-append probability
(``journal_error_probability``), drawn from its own stream per the
``(seed, category)`` convention so adding draws in one category never
perturbs another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import FaultInjectionError

#: Fault categories, in stream-seed order — the determinism contract.
_CATEGORIES = ("journal_error",)

#: Pump phases a kill may target, in execution order.
KILL_PHASES = ("begin", "store", "end")


@dataclass(frozen=True)
class ServiceFaultPlan:
    """Deterministic schedule of service-process faults for one run.

    Attributes:
        seed: Seed for the probabilistic streams.
        kill_after_accepts: Kill the process immediately after this
            many submissions have been accepted (``None`` disables).
        kill_at_pump: Kill the process during this pump round,
            0-indexed over the service's lifetime (``None`` disables).
        kill_pump_phase: Which phase of the targeted round dies:
            ``"begin"``, ``"store"``, or ``"end"``.
        torn_tail_bytes: When a kill fires, this many buffered journal
            bytes reach disk first — tearing the tail record.  ``0``
            (default) loses the whole un-flushed buffer.
        journal_error_appends: Append indices (0-based over the
            journal's lifetime) that fail deterministically.
        journal_error_probability: Per-append probability of an
            injected I/O error, drawn from the plan's own stream.
    """

    seed: int = 0
    kill_after_accepts: Optional[int] = None
    kill_at_pump: Optional[int] = None
    kill_pump_phase: str = "begin"
    torn_tail_bytes: int = 0
    journal_error_appends: Tuple[int, ...] = ()
    journal_error_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.kill_pump_phase not in KILL_PHASES:
            raise FaultInjectionError(
                f"kill_pump_phase must be one of {KILL_PHASES}, "
                f"got {self.kill_pump_phase!r}"
            )
        if self.kill_after_accepts is not None and self.kill_after_accepts < 1:
            raise FaultInjectionError(
                f"kill_after_accepts must be >= 1, got {self.kill_after_accepts}"
            )
        if self.kill_at_pump is not None and self.kill_at_pump < 0:
            raise FaultInjectionError(
                f"kill_at_pump must be >= 0, got {self.kill_at_pump}"
            )
        if self.torn_tail_bytes < 0:
            raise FaultInjectionError(
                f"torn_tail_bytes must be >= 0, got {self.torn_tail_bytes}"
            )
        if not 0.0 <= self.journal_error_probability < 1.0:
            raise FaultInjectionError(
                "journal_error_probability must lie in [0, 1), "
                f"got {self.journal_error_probability}"
            )
        if any(i < 0 for i in self.journal_error_appends):
            raise FaultInjectionError(
                "journal_error_appends must be non-negative: "
                f"{self.journal_error_appends}"
            )
        object.__setattr__(
            self,
            "journal_error_appends",
            tuple(sorted(set(self.journal_error_appends))),
        )


#: The benign plan: the process never dies, the journal never errors.
NO_SERVICE_FAULTS = ServiceFaultPlan()


class ServiceFaultInjector:
    """Stateful, deterministic realization of a :class:`ServiceFaultPlan`.

    One injector drives one service lifetime.  The service consults it
    at every accept and pump boundary; the journal writer consults it
    per append.
    """

    def __init__(self, plan: ServiceFaultPlan):
        self.plan = plan
        self._streams = {
            name: np.random.default_rng((plan.seed, index))
            for index, name in enumerate(_CATEGORIES)
        }
        self._accepts = 0
        self._appends = 0

    def kill_on_accept(self) -> bool:
        """Does the process die right after this acceptance?"""
        self._accepts += 1
        return self._accepts == self.plan.kill_after_accepts

    def kill_on_pump(self, round_index: int, phase: str) -> bool:
        """Does the process die in this phase of this pump round?"""
        return (
            round_index == self.plan.kill_at_pump
            and phase == self.plan.kill_pump_phase
        )

    def journal_append_fails(self) -> bool:
        """Does this journal append hit an injected I/O error?"""
        index = self._appends
        self._appends += 1
        if index in self.plan.journal_error_appends:
            return True
        probability = self.plan.journal_error_probability
        if probability <= 0.0:
            return False
        return bool(self._streams["journal_error"].random() < probability)
