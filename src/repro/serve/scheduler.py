"""The scheduler: validate, fingerprint-dedup, and batch onto the engine.

The serving layer's analogue of an inference server's request
coalescing.  Every scheduling round:

1. each submission is resolved — registry applications are compiled
   once per (app, hub) and raw IL goes through the *same* validation
   and placement path a phone-side manager uses
   (:func:`repro.api.manager.validate_condition`); a submission that
   fails validation becomes a structured :class:`Failed` response and
   never touches the rest of the batch;
2. resolved work is deduplicated by **content**: the IL program's
   fingerprint (:func:`repro.sim.engine.program_fingerprint`) plus the
   trace key and execution knobs.  N tenants pushing the same condition
   over the same trace pay for one engine run;
3. surviving application work is ordered trace-major and handed to the
   engine as one plan (:func:`repro.sim.engine.plan_from_cells` →
   :func:`execute_plan`), sharing the persistent process pool when
   ``jobs > 1``; raw-IL work runs hub-only through the shared
   :class:`~repro.sim.engine.RunContext`, with dedup-missed work across
   tenants and traces stacked into tensor-major batched plans
   (:meth:`~repro.sim.engine.RunContext.wake_events_batch`) per pump
   round;
4. results fan back out to every coalesced subscriber, and land in a
   bounded cross-round memo so later identical submissions coalesce
   without re-entering the engine at all.

Results are bit-identical to direct ``Sidewinder``/engine runs: the
scheduler adds routing around the engine, never arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.compile import compile_pipeline
from repro.api.manager import validate_condition
from repro.apps import all_applications
from repro.apps.base import SensingApplication
from repro.errors import HubExecutionError, ServiceError, SidewinderError
from repro.hub.fpga import ARTIX_CLASS, HubProcessor
from repro.hub.mcu import DEFAULT_CATALOG
from repro.il.graph import DataflowGraph
from repro.power.phone import NEXUS4, PhonePowerProfile
from repro.sim.configs.sidewinder import Sidewinder
from repro.sim.engine import (
    RunContext,
    execute_plan,
    plan_from_cells,
    program_fingerprint,
)
from repro.serve.submission import (
    Completed,
    Failed,
    Response,
    ServeResult,
    Submission,
    Ticket,
)
from repro.traces.base import Trace

#: Hub hardware choices a submission may name.  ``default`` is the
#: paper's MSP430 + LM4F120 pair; ``fpga`` adds the Artix-class FPGA
#: for conditions too heavy for either MCU.
HUB_CATALOGS: Dict[str, Tuple[HubProcessor, ...]] = {
    "default": tuple(DEFAULT_CATALOG),
    "fpga": tuple(DEFAULT_CATALOG) + (ARTIX_CLASS,),
}

#: Cross-round coalescing memo bound: completed work items kept for
#: future submissions to coalesce onto.  Oldest entries fall out first.
DEFAULT_MEMO_ENTRIES = 1024


@dataclass(frozen=True)
class _Work:
    """One resolved, deduplicatable unit of engine work.

    Attributes:
        key: Content identity — everything that determines the result.
        trace: The resolved trace object.
        config: Sidewinder configuration (application work only).
        app: Application instance (application work only).
        graph: Validated condition graph (raw-IL work only).
        chunk_seconds: Hub feed chunking (raw-IL work only).
    """

    key: tuple
    trace: Trace
    config: Optional[Sidewinder] = None
    app: Optional[SensingApplication] = None
    graph: Optional[DataflowGraph] = None
    chunk_seconds: float = 4.0


class Scheduler:
    """Turns batches of submissions into deduplicated engine work.

    Args:
        traces: The service's trace registry (name → trace).  Traces
            are pinned for the scheduler's lifetime so engine and pool
            caches stay valid.
        context: Shared :class:`~repro.sim.engine.RunContext` for
            serial execution and raw-IL runs.
        jobs: Worker processes for application batches; ``N > 1``
            shares the engine's persistent pool.
        profile: Phone power profile for every run.
        memo_entries: Bound on the cross-round coalescing memo.
    """

    def __init__(
        self,
        traces: Mapping[str, Trace],
        context: RunContext,
        jobs: int = 1,
        profile: PhonePowerProfile = NEXUS4,
        memo_entries: int = DEFAULT_MEMO_ENTRIES,
    ):
        if memo_entries < 0:
            raise ServiceError(
                f"memo_entries must be non-negative, got {memo_entries}"
            )
        self._traces = dict(traces)
        self._context = context
        self._jobs = jobs
        self._profile = profile
        self._memo_entries = memo_entries
        self._apps: Dict[str, SensingApplication] = {
            app.name: app for app in all_applications()
        }
        self._configs: Dict[str, Sidewinder] = {}
        #: app name -> (program fingerprint,) memo — compiling a registry
        #: app's pipeline is pure, so once is enough.
        self._app_fingerprints: Dict[str, str] = {}
        #: IL text -> validated graph (validation reuses the manager's
        #: push path; memoized so repeat submissions skip re-validation).
        self._il_graphs: Dict[Tuple[str, str], DataflowGraph] = {}
        self._memo: Dict[tuple, ServeResult] = {}

    @property
    def batch_rounds(self) -> int:
        """Tensor-major hub dispatches the shared context has run."""
        return self._context.stats.batch_rounds

    @property
    def batched_cells(self) -> int:
        """Per-trace hub runs those batched dispatches covered."""
        return self._context.stats.batched_cells

    @property
    def shape_rounds(self) -> int:
        """Shape-keyed heterogeneous dispatches the context has run."""
        return self._context.stats.shape_rounds

    @property
    def shape_cells(self) -> int:
        """Per-trace hub runs those shape dispatches covered."""
        return self._context.stats.shape_cells

    @property
    def batch_padded_cells(self) -> int:
        """Allocated channel-tensor cells across stacked dispatches."""
        return self._context.stats.batch_padded_cells

    @property
    def batch_valid_cells(self) -> int:
        """Valid (non-padding) cells across stacked dispatches."""
        return self._context.stats.batch_valid_cells

    # -- registry views the service validates against -------------------

    @property
    def app_names(self) -> Tuple[str, ...]:
        """Registry applications submissions may name."""
        return tuple(sorted(self._apps))

    @property
    def trace_names(self) -> Tuple[str, ...]:
        """Registry traces submissions may name."""
        return tuple(sorted(self._traces))

    @property
    def hub_names(self) -> Tuple[str, ...]:
        """Hub catalog choices submissions may name."""
        return tuple(sorted(HUB_CATALOGS))

    # -- resolution -----------------------------------------------------

    def _config_for(self, hub: str) -> Sidewinder:
        config = self._configs.get(hub)
        if config is None:
            config = Sidewinder(catalog=HUB_CATALOGS[hub])
            self._configs[hub] = config
        return config

    def _resolve(self, submission: Submission) -> _Work:
        """Validate one submission into a deduplicatable work item.

        Raises:
            SidewinderError: any library validation/placement failure —
                the caller turns it into a per-request ``Failed``.
        """
        trace = self._traces.get(submission.trace)
        if trace is None:
            raise ServiceError(f"unknown trace {submission.trace!r}")
        if submission.kind == "app":
            app = self._apps.get(submission.app or "")
            if app is None:
                raise ServiceError(f"unknown application {submission.app!r}")
            missing = sorted(c for c in app.channels if c not in trace.data)
            if missing:
                raise HubExecutionError(
                    f"trace {trace.name!r} lacks channels {missing} "
                    "needed by the wake-up condition"
                )
            fingerprint = self._app_fingerprints.get(app.name)
            if fingerprint is None:
                program = compile_pipeline(app.build_wakeup_pipeline())
                fingerprint = program_fingerprint(program)
                self._app_fingerprints[app.name] = fingerprint
            key = ("app", app.name, fingerprint, trace.name, submission.hub)
            return _Work(
                key=key,
                trace=trace,
                config=self._config_for(submission.hub),
                app=app,
            )
        graph = self._il_graphs.get((submission.il or "", submission.hub))
        if graph is None:
            # The same validation + placement a phone-side manager runs
            # before pushing to its hub; raises the library's own error
            # types on bad IL.
            program, graph, _ = validate_condition(
                submission.il or "", HUB_CATALOGS[submission.hub]
            )
            self._il_graphs[(submission.il or "", submission.hub)] = graph
        missing = sorted(c for c in graph.channels if c not in trace.data)
        if missing:
            raise HubExecutionError(
                f"trace {trace.name!r} lacks channels {missing} "
                "needed by the wake-up condition"
            )
        key = (
            "il",
            self._context.fingerprint(graph.program),
            trace.name,
            float(submission.chunk_seconds),
            submission.hub,
        )
        return _Work(
            key=key,
            trace=trace,
            graph=graph,
            chunk_seconds=float(submission.chunk_seconds),
        )

    # -- execution ------------------------------------------------------

    def _remember(self, key: tuple, result: ServeResult) -> None:
        if self._memo_entries == 0:
            return
        while len(self._memo) >= self._memo_entries:
            self._memo.pop(next(iter(self._memo)))
        self._memo[key] = result

    def seed_memo(self, submission: Submission, result: ServeResult) -> bool:
        """Pre-load the coalescing memo with a known (submission, result).

        Crash recovery calls this with journaled completions before
        re-executing an interrupted round, so coalesced members whose
        payer already completed durably coalesce onto the *same* result
        object again — preserving dedup flags and bit-identity without
        re-entering the engine.  Returns False (and seeds nothing) for
        submissions that no longer resolve.
        """
        try:
            work = self._resolve(submission)
        except SidewinderError:
            return False
        self._remember(work.key, result)
        return True

    def run_batch(
        self, entries: Sequence[Tuple[Ticket, Submission]], now: float
    ) -> Tuple[List[Response], int]:
        """Run one scheduling round.

        Args:
            entries: (ticket, submission) pairs in queue order.
            now: Service-clock completion time for this round.

        Returns:
            ``(responses, engine_runs)`` — one terminal response per
            entry, in entry order, and how many unique work items
            actually entered the engine.
        """
        responses: List[Optional[Response]] = [None] * len(entries)
        works: Dict[tuple, _Work] = {}
        members: Dict[tuple, List[int]] = {}

        def latency(i: int) -> float:
            return now - entries[i][0].submitted_at

        for i, (ticket, submission) in enumerate(entries):
            try:
                work = self._resolve(submission)
            except SidewinderError as error:
                responses[i] = Failed(
                    ticket, type(error).__name__, str(error), latency(i)
                )
                continue
            works.setdefault(work.key, work)
            members.setdefault(work.key, []).append(i)

        def complete(key: tuple, result: ServeResult, payer: Optional[int]) -> None:
            for i in members[key]:
                responses[i] = Completed(
                    entries[i][0], result, dedup=(i != payer), latency=latency(i)
                )

        def fail(key: tuple, error: SidewinderError) -> None:
            for i in members[key]:
                responses[i] = Failed(
                    entries[i][0], type(error).__name__, str(error), latency(i)
                )

        fresh: List[tuple] = []
        for key in members:
            memoized = self._memo.get(key)
            if memoized is not None:
                complete(key, memoized, payer=None)
            else:
                fresh.append(key)

        engine_runs = 0

        app_keys = [k for k in fresh if works[k].app is not None]
        if app_keys:
            plan = plan_from_cells(
                [(works[k].config, works[k].app, works[k].trace) for k in app_keys]
            )
            # Channel coverage was checked in _resolve, so nothing
            # should be skipped; a skip here is a registry/trace
            # mismatch surfaced as a per-request failure.
            skipped = {(s.app_name, s.trace_name) for s in plan.skipped}
            ran = [
                k
                for k in app_keys
                if (works[k].app.name, works[k].trace.name) not in skipped
            ]
            results = execute_plan(
                plan,
                jobs=self._jobs,
                profile=self._profile,
                context=self._context,
                cache=self._context.cache,
                fuse=self._context.fuse,
                compiled=self._context.compiled,
            )
            engine_runs += len(ran)
            for key, result in zip(ran, results):
                self._remember(key, result)
                complete(key, result, payer=members[key][0])
            for key in app_keys:
                if (works[key].app.name, works[key].trace.name) in skipped:
                    fail(
                        key,
                        HubExecutionError(
                            f"trace {works[key].trace.name!r} cannot run "
                            f"{works[key].app.name!r}"
                        ),
                    )

        il_keys = [k for k in fresh if works[k].graph is not None]
        by_chunk: Dict[float, List[tuple]] = {}
        for key in il_keys:
            by_chunk.setdefault(works[key].chunk_seconds, []).append(key)
        for chunk_seconds, keys in by_chunk.items():
            # One tensor-major dispatch per (pump round, chunking):
            # dedup-missed conditions across tenants and traces stack
            # into batched plans where the engine's cost model has
            # settled on the compiled tier; the rest run per-trace
            # inside the same call.  Bit-identical either way, so a
            # batch failure (e.g. one member's missing channel) simply
            # re-runs the group per key to preserve per-request errors.
            batched: Optional[List[tuple]] = None
            try:
                batched = self._context.wake_events_batch(
                    [(works[k].graph, works[k].trace) for k in keys],
                    chunk_seconds,
                )
            except SidewinderError:
                batched = None
            for position, key in enumerate(keys):
                work = works[key]
                if batched is not None:
                    events = batched[position]
                else:
                    try:
                        events = self._context.wake_events(
                            work.graph, work.trace, work.chunk_seconds
                        )
                    except SidewinderError as error:
                        fail(key, error)
                        continue
                engine_runs += 1
                result = tuple(events)
                self._remember(key, result)
                complete(key, result, payer=members[key][0])

        assert all(r is not None for r in responses)
        return list(responses), engine_runs
