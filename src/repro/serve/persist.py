"""Crash-safe response spill files for the result store.

The spill tier mirrors the trace-persistence format
(:mod:`repro.traces.io`): a compressed ``.npz`` holding the payload
plus a human-readable ``.json`` sidecar holding the metadata a fleet
operator greps for.  The payload is the pickled terminal
:class:`~repro.serve.submission.Response`, stored as a ``uint8`` array
so the archive layer stays pure numpy; the sidecar records the
payload's CRC-32, verified on every load, so a torn or bit-rotted spill
file surfaces as a :class:`~repro.errors.JournalError` instead of a
silently wrong response.

Both files are written through :func:`repro.traces.io.atomic_write`
(temp sibling + ``os.replace``), so a process killed mid-spill never
leaves a torn spill entry — the invariant the result store depends on:
a spill file either round-trips bit-identically or does not exist.
"""

from __future__ import annotations

import json
import pickle
import zipfile
import zlib
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import JournalError
from repro.serve.submission import Cancelled, Completed, Failed, Response
from repro.traces.io import atomic_write

#: Pickle protocol for spilled payloads (matches the journal's).
_PICKLE_PROTOCOL = 4


def spill_path(directory: Union[str, Path], submission_id: int) -> Path:
    """Canonical spill-file location for one submission id."""
    return Path(directory) / f"result-{submission_id:08d}.npz"


def _sidecar(path: Path) -> Path:
    return path.with_suffix(".json")


def save_response(
    directory: Union[str, Path], submission_id: int, response: Response,
    expiry: float,
) -> Path:
    """Spill one terminal response; returns the ``.npz`` written.

    Raises:
        JournalError: when the spill directory is not writable.
    """
    path = spill_path(directory, submission_id)
    payload = pickle.dumps(response, protocol=_PICKLE_PROTOCOL)
    manifest = {
        "submission_id": submission_id,
        "tenant": response.ticket.tenant,
        "kind": type(response).__name__,
        "expiry": expiry,
        "bytes": len(payload),
        "crc32": zlib.crc32(payload),
    }
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with atomic_write(path) as tmp:
            with open(tmp, "wb") as handle:
                np.savez_compressed(
                    handle, payload=np.frombuffer(payload, dtype=np.uint8)
                )
        with atomic_write(_sidecar(path)) as tmp:
            tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    except OSError as error:
        raise JournalError(
            f"cannot spill result {submission_id} to {path}: {error}"
        ) from None
    return path


def load_response(directory: Union[str, Path], submission_id: int) -> Response:
    """Fault one spilled response back, verifying its CRC.

    Raises:
        JournalError: when the spill entry is missing, torn, or fails
            its integrity check.
    """
    path = spill_path(directory, submission_id)
    sidecar = _sidecar(path)
    if not path.exists() or not sidecar.exists():
        raise JournalError(
            f"spilled result {submission_id} missing: {path} / {sidecar}"
        )
    try:
        manifest = json.loads(sidecar.read_text())
        with np.load(path) as archive:
            payload = archive["payload"].tobytes()
    except (
        OSError, ValueError, KeyError, json.JSONDecodeError,
        zipfile.BadZipFile,
    ) as error:
        raise JournalError(
            f"spilled result {submission_id} unreadable: {error}"
        ) from None
    if zlib.crc32(payload) != manifest.get("crc32"):
        raise JournalError(
            f"spilled result {submission_id} failed its CRC check"
        )
    try:
        response = pickle.loads(payload)
    except Exception as error:
        raise JournalError(
            f"spilled result {submission_id} cannot be decoded: {error}"
        ) from None
    if not isinstance(response, (Completed, Failed, Cancelled)):
        raise JournalError(
            f"spilled result {submission_id} decoded to "
            f"{type(response).__name__}, not a Response"
        )
    return response


def delete_response(directory: Union[str, Path], submission_id: int) -> None:
    """Remove one spill entry (both files); missing files are fine."""
    path = spill_path(directory, submission_id)
    for target in (path, _sidecar(path)):
        try:
            target.unlink()
        except FileNotFoundError:
            pass
        except OSError:
            pass
