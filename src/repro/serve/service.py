"""The multi-tenant condition service.

A :class:`ConditionService` models one Sidewinder backend shard: many
device-resident sensor managers push wake-up conditions at it, and it
schedules them onto the single-machine simulation engine (PRs 2–4)
through a bounded queue, per-tenant admission control, and the
fingerprint-deduplicating scheduler.

The service is deliberately synchronous and single-threaded: `submit`
enqueues, `pump` runs one scheduling round, `drain` runs rounds until
the queue is empty.  That keeps every run bit-for-bit deterministic
(the async transport is a ROADMAP follow-on); parallelism lives below,
in the engine's persistent process pool (``jobs > 1``).

Everything that can go wrong for one tenant is a structured value —
:class:`~repro.serve.submission.Rejected` at admission,
:class:`~repro.serve.submission.Failed` per request after acceptance —
so no tenant's input can poison another tenant's batch, and quota
rejections interleave freely with accepted work.
"""

from __future__ import annotations

from typing import Callable, List, Mapping, Optional, Union

from repro.power.phone import NEXUS4, PhonePowerProfile
from repro.serve.metrics import LogicalClock, MetricsRecorder, MetricsSnapshot
from repro.serve.queue import LaneQueue
from repro.serve.quotas import AdmissionController, TenantQuota
from repro.serve.scheduler import Scheduler
from repro.serve.store import ResultStore
from repro.serve.submission import (
    Cancelled,
    Completed,
    Lane,
    Rejected,
    Response,
    Submission,
    Ticket,
)
from repro.sim.engine import RunContext, shutdown_pool
from repro.traces.base import Trace

#: Default total queue capacity.
DEFAULT_CAPACITY = 256

#: Default queue slots reserved for the interactive lane.
DEFAULT_INTERACTIVE_RESERVE = 32

#: Default submissions consumed per scheduling round.
DEFAULT_BATCH_SIZE = 64

#: Default result TTL in service-clock units (scheduling rounds under
#: the logical clock).
DEFAULT_RESULT_TTL = 512.0


class ConditionService:
    """A fleet-facing condition service over the simulation engine.

    Args:
        traces: Trace registry — the sensor recordings tenants may name.
        quota: Per-tenant admission limits.
        capacity: Bounded queue size across both lanes.
        interactive_reserve: Queue slots only interactive submissions
            may claim.
        batch_size: Submissions consumed per scheduling round.
        jobs: Engine worker processes (``N > 1`` uses the persistent
            pool; it is shut down — idempotently — by :meth:`shutdown`).
        result_ttl: Clock units a completed response stays fetchable.
        clock: Injectable time source; defaults to a deterministic
            :class:`~repro.serve.metrics.LogicalClock`.
        profile: Phone power profile for every run.
        context: Optional externally owned engine context (share one
            across services to share its caches).

    Raises:
        ServiceError: on inconsistent construction parameters.
    """

    def __init__(
        self,
        traces: Mapping[str, Trace],
        quota: Optional[TenantQuota] = None,
        capacity: int = DEFAULT_CAPACITY,
        interactive_reserve: int = DEFAULT_INTERACTIVE_RESERVE,
        batch_size: int = DEFAULT_BATCH_SIZE,
        jobs: int = 1,
        result_ttl: float = DEFAULT_RESULT_TTL,
        clock: Optional[Callable[[], float]] = None,
        profile: PhonePowerProfile = NEXUS4,
        context: Optional[RunContext] = None,
    ):
        self._clock = clock if clock is not None else LogicalClock()
        self._queue: LaneQueue = LaneQueue(capacity, interactive_reserve)
        self._admission = AdmissionController(quota or TenantQuota())
        self._context = context if context is not None else RunContext()
        self._scheduler = Scheduler(
            traces, context=self._context, jobs=jobs, profile=profile
        )
        self._store = ResultStore(result_ttl)
        self._metrics = MetricsRecorder()
        self._jobs = jobs
        self._batch_size = max(1, int(batch_size))
        self._next_id = 1
        self._closed = False

    # -- clock plumbing -------------------------------------------------

    def _now(self) -> float:
        return self._clock()

    def _tick(self) -> None:
        tick = getattr(self._clock, "tick", None)
        if callable(tick):
            tick()

    # -- the tenant-facing API ------------------------------------------

    def submit(self, submission: Submission) -> Union[Ticket, Rejected]:
        """Admit one submission: a :class:`Ticket`, or why not.

        Admission checks run in order: service liveness, structural
        validity, registry membership (app/trace/hub names), tenant
        quota and budget, then queue capacity (with the interactive
        reserve).  All refusals are values — nothing here raises for a
        bad request.
        """
        self._metrics.submitted += 1
        tenant = submission.tenant
        if self._closed:
            return self._reject(tenant, "shutdown", "service is shut down")
        if (submission.app is None) == (submission.il is None):
            return self._reject(
                tenant, "malformed",
                "exactly one of app / il must be set",
            )
        if submission.chunk_seconds <= 0:
            return self._reject(
                tenant, "malformed",
                f"chunk_seconds must be positive, got {submission.chunk_seconds}",
            )
        if submission.hub not in self._scheduler.hub_names:
            return self._reject(
                tenant, "unknown_hub",
                f"hub {submission.hub!r} not in {self._scheduler.hub_names}",
            )
        if submission.trace not in self._scheduler.trace_names:
            return self._reject(
                tenant, "unknown_trace",
                f"trace {submission.trace!r} is not in this service's registry",
            )
        if submission.app is not None and (
            submission.app not in self._scheduler.app_names
        ):
            return self._reject(
                tenant, "unknown_app",
                f"application {submission.app!r} is not registered",
            )
        quota_reason = self._admission.admit(tenant)
        if quota_reason is not None:
            return self._reject(
                tenant, quota_reason,
                f"tenant {tenant!r} exceeded its {quota_reason.split('_')[1]}",
            )
        self._tick()
        ticket = Ticket(self._next_id, tenant, submitted_at=self._now())
        if not self._queue.offer((ticket, submission), submission.lane):
            reason = (
                "bulk_backpressure"
                if submission.lane is Lane.BULK
                and len(self._queue) < self._queue.capacity
                else "queue_full"
            )
            return self._reject(
                tenant, reason,
                f"queue depth {len(self._queue)}/{self._queue.capacity}",
            )
        self._next_id += 1
        self._metrics.accepted += 1
        self._admission.on_accepted(tenant)
        return ticket

    def _reject(self, tenant: str, reason: str, detail: str) -> Rejected:
        self._metrics.on_rejected(reason)
        return Rejected(tenant, reason, detail)

    def pump(self) -> List[Response]:
        """Run one scheduling round over up to ``batch_size`` submissions.

        Returns the round's terminal responses (also fetchable via
        :meth:`result` until their TTL lapses).  A no-op on an empty
        queue.
        """
        self._store.evict_expired(self._now())
        entries = self._queue.take(self._batch_size)
        if not entries:
            return []
        for ticket, _ in entries:
            self._admission.on_scheduled(ticket.tenant)
        self._tick()
        responses, engine_runs = self._scheduler.run_batch(
            entries, now=self._now()
        )
        self._metrics.engine_runs += engine_runs
        now = self._now()
        for response in responses:
            if isinstance(response, Completed):
                self._metrics.on_completed(response.latency, response.dedup)
            else:
                self._metrics.failed += 1
            self._store.put(response.ticket.submission_id, response, now)
        return responses

    def drain(self) -> List[Response]:
        """Pump until the queue is empty; all responses, in round order."""
        responses: List[Response] = []
        while len(self._queue):
            responses.extend(self.pump())
        return responses

    def result(self, submission_id: int) -> Optional[Response]:
        """A ticket's terminal response, or ``None`` if pending/expired."""
        return self._store.get(submission_id, self._now())

    def metrics(self) -> MetricsSnapshot:
        """Current counters, dedup hit-rate and latency percentiles."""
        return self._metrics.snapshot(
            queue_depth=len(self._queue), store_size=len(self._store)
        )

    @property
    def queue_depth(self) -> int:
        """Submissions currently queued."""
        return len(self._queue)

    @property
    def closed(self) -> bool:
        """True once :meth:`shutdown` has run."""
        return self._closed

    # -- lifecycle ------------------------------------------------------

    def shutdown(self, drain: bool = True) -> List[Response]:
        """Stop the service; idempotent (a second call is a no-op).

        Args:
            drain: When True (default) every queued submission runs to
                a terminal response before the service closes.  When
                False, queued submissions become structured
                :class:`Cancelled` responses without running.

        The engine's persistent process pool is torn down through
        :func:`repro.sim.engine.shutdown_pool` (itself idempotent), so
        no worker futures outlive the service.
        """
        if self._closed:
            return []
        responses: List[Response] = []
        if drain:
            responses = self.drain()
        else:
            now = self._now()
            for ticket, _ in self._queue.drain():
                self._admission.on_scheduled(ticket.tenant)
                cancelled = Cancelled(ticket)
                self._metrics.cancelled += 1
                self._store.put(ticket.submission_id, cancelled, now)
                responses.append(cancelled)
        self._closed = True
        if self._jobs > 1:
            shutdown_pool()
        return responses
