"""The multi-tenant condition service.

A :class:`ConditionService` models one Sidewinder backend shard: many
device-resident sensor managers push wake-up conditions at it, and it
schedules them onto the single-machine simulation engine (PRs 2–4)
through a bounded queue, per-tenant admission control, and the
fingerprint-deduplicating scheduler.

The service is deliberately synchronous and single-threaded: `submit`
enqueues, `pump` runs one scheduling round, `drain` runs rounds until
the queue is empty.  That keeps every run bit-for-bit deterministic
(the async transport is a ROADMAP follow-on); parallelism lives below,
in the engine's persistent process pool (``jobs > 1``).

Everything that can go wrong for one tenant is a structured value —
:class:`~repro.serve.submission.Rejected` at admission,
:class:`~repro.serve.submission.Failed` per request after acceptance —
so no tenant's input can poison another tenant's batch, and quota
rejections interleave freely with accepted work.

With a ``journal`` path the shard is also **crash-recoverable**: every
acceptance is journaled before its ticket escapes, every scheduling
round and terminal response is journaled behind it, and
:meth:`ConditionService.recover` rebuilds an equivalent service from
the journal — completed work re-answered bit-identically, the
interrupted round re-executed at its original logical time, the rest
re-enqueued, and tenant quota state reconstructed so a restart cannot
be used to reset budgets.  A :class:`~repro.serve.health.HealthMonitor`
supervises the shard's own pump cadence and sheds new batch work while
the shard is degraded.
"""

from __future__ import annotations

from pathlib import Path
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.errors import JournalError, ServiceError, ServiceKilled, SidewinderError
from repro.hub.runtime import WakeEvent
from repro.power.phone import NEXUS4, PhonePowerProfile
from repro.serve.faults import ServiceFaultInjector, ServiceFaultPlan
from repro.serve.health import HealthMonitor, HealthPolicy
from repro.serve.ingest import StreamIngest
from repro.serve.journal import (
    JournalWriter,
    RecoveryStats,
    read_journal,
    truncate_journal,
)
from repro.serve.metrics import LogicalClock, MetricsRecorder, MetricsSnapshot
from repro.serve.queue import LaneQueue
from repro.serve.quotas import AdmissionController, TenantQuota
from repro.serve.scheduler import Scheduler
from repro.serve.store import ResultStore
from repro.serve.submission import (
    Cancelled,
    Completed,
    Lane,
    Rejected,
    Response,
    ServeResult,
    Submission,
    Ticket,
)
from repro.sim.engine import RunContext
from repro.traces.base import Trace

#: Default total queue capacity.
DEFAULT_CAPACITY = 256

#: Default queue slots reserved for the interactive lane.
DEFAULT_INTERACTIVE_RESERVE = 32

#: Default submissions consumed per scheduling round.
DEFAULT_BATCH_SIZE = 64

#: Default result TTL in service-clock units (scheduling rounds under
#: the logical clock).
DEFAULT_RESULT_TTL = 512.0

#: Bound on the journal's result-reference map: completed results kept
#: strongly referenced so later coalesced completions journal a small
#: ``cref`` record instead of re-pickling a shared payload.
DEFAULT_CREF_ENTRIES = 1024


class ConditionService:
    """A fleet-facing condition service over the simulation engine.

    Args:
        traces: Trace registry — the sensor recordings tenants may name.
        quota: Per-tenant admission limits.
        capacity: Bounded queue size across both lanes.
        interactive_reserve: Queue slots only interactive submissions
            may claim.
        batch_size: Submissions consumed per scheduling round.
        jobs: Engine worker processes (``N > 1`` uses the persistent
            pool; it is shut down — idempotently — by :meth:`shutdown`).
        result_ttl: Clock units a completed response stays fetchable.
        clock: Injectable time source; defaults to a deterministic
            :class:`~repro.serve.metrics.LogicalClock`.
        profile: Phone power profile for every run.
        context: Optional externally owned engine context (share one
            across services to share its caches).
        journal: Optional write-ahead journal path.  When set, every
            acceptance is made durable before its ticket escapes and
            :meth:`recover` can rebuild the shard after a crash.
        faults: Optional deterministic
            :class:`~repro.serve.faults.ServiceFaultPlan` — kills the
            process at planned submission/pump boundaries and injects
            journal I/O errors (robustness tests only).
        health: Liveness policy for the shard's
            :class:`~repro.serve.health.HealthMonitor`; a degraded
            shard rejects new bulk work (``reason="degraded"``) while
            it keeps draining accepted work.
        spill_dir: Optional directory for the result store's disk tier.
        memory_budget: With ``spill_dir``, how many responses stay
            resident in memory before older ones spill.

    Raises:
        ServiceError: on inconsistent construction parameters.
    """

    def __init__(
        self,
        traces: Mapping[str, Trace],
        quota: Optional[TenantQuota] = None,
        capacity: int = DEFAULT_CAPACITY,
        interactive_reserve: int = DEFAULT_INTERACTIVE_RESERVE,
        batch_size: int = DEFAULT_BATCH_SIZE,
        jobs: int = 1,
        result_ttl: float = DEFAULT_RESULT_TTL,
        clock: Optional[Callable[[], float]] = None,
        profile: PhonePowerProfile = NEXUS4,
        context: Optional[RunContext] = None,
        journal: Optional[Union[str, Path]] = None,
        faults: Optional[ServiceFaultPlan] = None,
        health: Optional[HealthPolicy] = None,
        spill_dir: Optional[Union[str, Path]] = None,
        memory_budget: Optional[int] = None,
    ):
        self._clock = clock if clock is not None else LogicalClock()
        self._queue: LaneQueue = LaneQueue(capacity, interactive_reserve)
        self._admission = AdmissionController(quota or TenantQuota())
        self._context = context if context is not None else RunContext()
        self._scheduler = Scheduler(
            traces, context=self._context, jobs=jobs, profile=profile
        )
        self._store = ResultStore(
            result_ttl, spill_dir=spill_dir, memory_budget=memory_budget
        )
        self._metrics = MetricsRecorder()
        self._jobs = jobs
        self._batch_size = max(1, int(batch_size))
        self._next_id = 1
        self._closed = False
        self._faults = (
            ServiceFaultInjector(faults) if faults is not None else None
        )
        self._journal = (
            JournalWriter(journal, faults=self._faults)
            if journal is not None
            else None
        )
        self._health = HealthMonitor(
            health if health is not None else HealthPolicy(),
            start=self._now(),
        )
        self._pump_index = 0
        self._ingest = StreamIngest(
            now=self._now,
            journal_append=(
                self._journal_stream_record
                if self._journal is not None
                else None
            ),
        )
        # id(result) -> (result, submission_id): strong refs, so a live
        # id can never be recycled while its map entry exists.
        self._journaled_results: Dict[int, Tuple[ServeResult, int]] = {}

    # -- clock plumbing -------------------------------------------------

    def _now(self) -> float:
        return self._clock()

    def _tick(self) -> None:
        tick = getattr(self._clock, "tick", None)
        if callable(tick):
            tick()

    # -- the tenant-facing API ------------------------------------------

    def submit(self, submission: Submission) -> Union[Ticket, Rejected]:
        """Admit one submission: a :class:`Ticket`, or why not.

        Admission checks run in order: service liveness, shard health
        (a degraded shard sheds new bulk work), structural validity,
        registry membership (app/trace/hub names), tenant quota and
        budget, then queue capacity (with the interactive reserve).
        With a journal, the acceptance is made durable *before* the
        ticket is returned; a journal failure retracts the queue entry
        and comes back as ``Rejected(reason="journal_unavailable")``.
        All refusals are values — nothing here raises for a bad
        request.
        """
        self._metrics.submitted += 1
        tenant = submission.tenant
        if self._closed:
            return self._reject(tenant, "shutdown", "service is shut down")
        self._health.on_submit(self._now())
        if self._health.degraded and submission.lane is Lane.BULK:
            return self._reject(
                tenant, "degraded",
                "shard is degraded and sheds new bulk work while draining",
            )
        if (submission.app is None) == (submission.il is None):
            return self._reject(
                tenant, "malformed",
                "exactly one of app / il must be set",
            )
        if submission.chunk_seconds <= 0:
            return self._reject(
                tenant, "malformed",
                f"chunk_seconds must be positive, got {submission.chunk_seconds}",
            )
        if submission.hub not in self._scheduler.hub_names:
            return self._reject(
                tenant, "unknown_hub",
                f"hub {submission.hub!r} not in {self._scheduler.hub_names}",
            )
        if submission.trace not in self._scheduler.trace_names:
            return self._reject(
                tenant, "unknown_trace",
                f"trace {submission.trace!r} is not in this service's registry",
            )
        if submission.app is not None and (
            submission.app not in self._scheduler.app_names
        ):
            return self._reject(
                tenant, "unknown_app",
                f"application {submission.app!r} is not registered",
            )
        quota_reason = self._admission.admit(tenant)
        if quota_reason is not None:
            return self._reject(
                tenant, quota_reason,
                f"tenant {tenant!r} exceeded its {quota_reason.split('_')[1]}",
            )
        self._tick()
        ticket = Ticket(self._next_id, tenant, submitted_at=self._now())
        if not self._queue.offer((ticket, submission), submission.lane):
            reason = (
                "bulk_backpressure"
                if submission.lane is Lane.BULK
                and len(self._queue) < self._queue.capacity
                else "queue_full"
            )
            return self._reject(
                tenant, reason,
                f"queue depth {len(self._queue)}/{self._queue.capacity}",
            )
        if self._journal is not None:
            try:
                self._journal.append(
                    ("accept", ticket.submission_id, ticket.submitted_at,
                     submission)
                )
            except JournalError as error:
                # The ticket must not escape un-journaled: take the
                # entry back out and refuse the submission instead.
                self._queue.retract(submission.lane)
                self._health.on_journal_error(self._now())
                return self._reject(tenant, "journal_unavailable", str(error))
        self._next_id += 1
        self._metrics.accepted += 1
        self._admission.on_accepted(tenant)
        if self._faults is not None and self._faults.kill_on_accept():
            self._kill()
        return ticket

    def _reject(self, tenant: str, reason: str, detail: str) -> Rejected:
        self._metrics.on_rejected(reason)
        return Rejected(tenant, reason, detail)

    def _kill(self) -> None:
        """Simulate abrupt process death at a planned fault point."""
        plan = self._faults.plan
        if self._journal is not None:
            self._journal.crash(plan.torn_tail_bytes or None)
        self._closed = True
        if self._jobs > 1:
            self._context.shutdown_pool()
        raise ServiceKilled(
            f"service killed by fault plan (seed {plan.seed})"
        )

    # -- journal plumbing -----------------------------------------------

    def _journal_round(
        self, now: float, entries: Sequence[Tuple[Ticket, Submission]]
    ) -> None:
        """Make this round — and every buffered accept — durable."""
        if self._journal is None:
            return
        member_ids = tuple(ticket.submission_id for ticket, _ in entries)
        try:
            self._journal.append(("round", now, member_ids))
            self._journal.flush()
        except JournalError:
            self._health.on_journal_error(now)

    def _remember_result(self, result: ServeResult, sid: int) -> None:
        key = id(result)
        if key in self._journaled_results:
            return
        while len(self._journaled_results) >= DEFAULT_CREF_ENTRIES:
            self._journaled_results.pop(next(iter(self._journaled_results)))
        self._journaled_results[key] = (result, sid)

    def _journal_responses(
        self, now: float, responses: Sequence[Response]
    ) -> None:
        """Buffer completion records, sharing payloads via ``cref``."""
        if self._journal is None:
            return
        try:
            for response in responses:
                sid = response.ticket.submission_id
                if isinstance(response, Completed):
                    ref = self._journaled_results.get(id(response.result))
                    if ref is not None:
                        self._journal.append(
                            ("cref", sid, now, ref[1], response.dedup,
                             response.latency)
                        )
                        continue
                    self._journal.append(("complete", sid, now, response))
                    self._remember_result(response.result, sid)
                else:
                    self._journal.append(("complete", sid, now, response))
        except JournalError:
            self._health.on_journal_error(now)

    def _journal_flush(self) -> None:
        if self._journal is None:
            return
        try:
            self._journal.flush()
        except JournalError:
            self._health.on_journal_error(self._now())

    def _journal_stream_record(self, record: tuple) -> None:
        """Buffer a stream record (chunk/sub) for the next round flush.

        Stream records are apply-then-journal: a journal failure counts
        on shard health but does not refuse the chunk — the device's
        resync protocol (:meth:`stream_cursor` after recovery, then
        idempotent re-push) recovers anything the journal lost.
        """
        try:
            self._journal.append(record)
        except JournalError:
            self._health.on_journal_error(self._now())

    # -- streaming ingestion --------------------------------------------

    def push_chunk(
        self,
        tenant: str,
        stream: str,
        seq: int,
        samples: Mapping[str, np.ndarray],
        rate_hz: Optional[Mapping[str, float]] = None,
    ) -> bool:
        """Apply one device chunk to a stream; True when it advanced.

        The first chunk of a new stream must carry ``rate_hz``.  A
        duplicate ``seq`` (reconnect retry) is an idempotent no-op.
        Chunks become durable at the next pump's journal flush; the
        device's resync point after a shard crash is
        :meth:`stream_cursor`.

        Raises:
            ServiceError: when the service is shut down, or on an
                unknown stream with no ``rate_hz``.
            TraceError: on a sequence gap or unknown channel.
        """
        if self._closed:
            raise ServiceError("service is shut down")
        self._health.on_submit(self._now())
        return self._ingest.push(
            tenant, stream, seq, samples, rate_hz=rate_hz,
            journal=self._journal is not None,
        )

    def subscribe_stream(
        self, submission: Submission
    ) -> Union[int, Rejected]:
        """Register a streaming subscription; its id, or why not.

        ``submission.trace`` names an already-started stream of the
        same tenant and ``submission.il`` carries the condition (app
        submissions replay finished recordings; streams have none).
        Validation failures come back as structured
        :class:`~repro.serve.submission.Rejected` values, mirroring
        :meth:`submit`.
        """
        tenant = submission.tenant
        if self._closed:
            return self._reject(tenant, "shutdown", "service is shut down")
        self._health.on_submit(self._now())
        try:
            return self._ingest.subscribe(
                submission, journal=self._journal is not None
            )
        except SidewinderError as error:
            return self._reject(tenant, "invalid_subscription", str(error))

    def close_stream(
        self, tenant: str, stream: str
    ) -> Dict[int, Tuple[WakeEvent, ...]]:
        """End one stream: final catch-up round, then complete event
        logs per subscription id.

        Pending stream records are flushed first, so everything the
        final results derive from is durable before they escape.
        """
        self._journal_flush()
        return self._ingest.close_stream(tenant, stream)

    def stream_results(self, sub_id: int) -> Tuple[WakeEvent, ...]:
        """Wake events a streaming subscription has emitted so far."""
        return self._ingest.results(sub_id)

    def stream_cursor(self, tenant: str, stream: str) -> int:
        """The next chunk ``seq`` a stream expects (0 when unknown) —
        the device resync point after shard recovery."""
        return self._ingest.next_seq(tenant, stream)

    # -- scheduling -----------------------------------------------------

    def pump(self) -> List[Response]:
        """Run one scheduling round over up to ``batch_size`` submissions.

        Returns the round's terminal responses (also fetchable via
        :meth:`result` until their TTL lapses).  A no-op on an empty
        queue with no new stream arrivals.  With a journal, the round's
        membership is flushed before execution and its completions are
        flushed at round end, so a crash anywhere inside the round is
        recoverable with the round's original batch and logical time.

        Streams ride the same cadence: chunks and subscriptions that
        arrived since the last round are made durable by the round
        flush, then every subscription advances incrementally over its
        newly arrived span (one stacked batched-tier dispatch per
        ``batch_key`` group) before the batch executes.  Rounds with
        only stream work run the advance and return no responses —
        streamed wake events are read through :meth:`stream_results` /
        :meth:`close_stream`.
        """
        self._store.evict_expired(self._now())
        entries = self._queue.take(self._batch_size)
        stream_work = self._ingest.dirty
        if not entries and not stream_work:
            self._health.on_pump(self._now())
            return []
        round_index = self._pump_index
        self._pump_index += 1
        for ticket, _ in entries:
            self._admission.on_scheduled(ticket.tenant)
        self._tick()
        round_now = self._now()
        if entries:
            # The round flush also makes buffered stream records durable.
            self._journal_round(round_now, entries)
        else:
            # Stream-only round: chunks/subscriptions become durable
            # before they are evaluated.
            self._journal_flush()
        if self._faults is not None and self._faults.kill_on_pump(
            round_index, "begin"
        ):
            self._kill()
        if stream_work:
            self._ingest.advance()
        if not entries:
            self._health.on_pump(round_now)
            return []
        responses, engine_runs = self._scheduler.run_batch(
            entries, now=round_now
        )
        self._metrics.engine_runs += engine_runs
        for response in responses:
            if isinstance(response, Completed):
                self._metrics.on_completed(response.latency, response.dedup)
            else:
                self._metrics.failed += 1
            self._store.put(response.ticket.submission_id, response, round_now)
        if self._faults is not None and self._faults.kill_on_pump(
            round_index, "store"
        ):
            self._kill()
        self._journal_responses(round_now, responses)
        if self._faults is not None and self._faults.kill_on_pump(
            round_index, "end"
        ):
            self._kill()
        self._journal_flush()
        self._health.on_pump(round_now)
        return responses

    def drain(self) -> List[Response]:
        """Pump until the queue is empty; all responses, in round order."""
        responses: List[Response] = []
        while len(self._queue):
            responses.extend(self.pump())
        return responses

    def result(self, submission_id: int) -> Optional[Response]:
        """A ticket's terminal response, or ``None`` if pending/expired."""
        return self._store.get(submission_id, self._now())

    def metrics(self) -> MetricsSnapshot:
        """Current counters, dedup hit-rate, latency percentiles, and
        durability/health state."""
        return self._metrics.snapshot(
            queue_depth=len(self._queue),
            store_size=len(self._store),
            store_spilled=self._store.spilled_count,
            journal_errors=self._health.journal_errors,
            health_state=self._health.state.value,
            health_transitions=self._health.transitions,
            batch_rounds=self._scheduler.batch_rounds,
            batched_cells=self._scheduler.batched_cells,
            shape_rounds=self._scheduler.shape_rounds,
            shape_cells=self._scheduler.shape_cells,
            batch_padded_cells=self._scheduler.batch_padded_cells,
            batch_valid_cells=self._scheduler.batch_valid_cells,
            stream_chunks=self._ingest.chunks,
            stream_subscriptions=self._ingest.subscriptions,
            stream_backlog=self._ingest.backlog,
            stream_lag_s=self._ingest.lag_s,
            stream_rounds=self._ingest.rounds,
            stream_cells=self._ingest.cells,
        )

    def latency_samples(self) -> Tuple[float, ...]:
        """Every completion latency recorded so far, in completion order.

        Cross-shard aggregation needs the raw samples: merged
        percentiles must be computed over the union of shard samples,
        not averaged from per-shard percentiles (which has no meaning).
        """
        return tuple(self._metrics.latencies)

    @property
    def queue_depth(self) -> int:
        """Submissions currently queued."""
        return len(self._queue)

    @property
    def closed(self) -> bool:
        """True once :meth:`shutdown` has run."""
        return self._closed

    @property
    def health(self) -> HealthMonitor:
        """The shard's liveness supervisor."""
        return self._health

    @property
    def journal_path(self) -> Optional[Path]:
        """Where this shard journals, or ``None`` when not durable."""
        return self._journal.path if self._journal is not None else None

    # -- lifecycle ------------------------------------------------------

    def shutdown(self, drain: bool = True) -> List[Response]:
        """Stop the service; idempotent (a second call is a no-op).

        Args:
            drain: When True (default) every queued submission runs to
                a terminal response before the service closes.  When
                False, queued submissions become structured
                :class:`Cancelled` responses without running.

        The journal is flushed and closed (cancellations included, so a
        restart re-answers them instead of re-running them), spill
        files are removed, and this service's own worker pool is torn
        down through :meth:`repro.sim.engine.RunContext.shutdown_pool`
        (itself idempotent), so no worker futures outlive the service.
        Other services' pools are untouched — pool lifetime is
        per-context, not module-global.
        """
        if self._closed:
            return []
        responses: List[Response] = []
        if drain:
            responses = self.drain()
        else:
            now = self._now()
            for ticket, _ in self._queue.drain():
                self._admission.on_scheduled(ticket.tenant)
                cancelled = Cancelled(ticket)
                self._metrics.cancelled += 1
                self._store.put(ticket.submission_id, cancelled, now)
                responses.append(cancelled)
            self._journal_responses(now, responses)
        self._closed = True
        if self._journal is not None:
            try:
                self._journal.close()
            except JournalError:
                pass
        self._store.close()
        if self._jobs > 1:
            self._context.shutdown_pool()
        return responses

    # -- crash recovery -------------------------------------------------

    @classmethod
    def recover(
        cls,
        journal: Union[str, Path],
        traces: Mapping[str, Trace],
        quota: Optional[TenantQuota] = None,
        capacity: int = DEFAULT_CAPACITY,
        interactive_reserve: int = DEFAULT_INTERACTIVE_RESERVE,
        batch_size: int = DEFAULT_BATCH_SIZE,
        jobs: int = 1,
        result_ttl: float = DEFAULT_RESULT_TTL,
        profile: PhonePowerProfile = NEXUS4,
        context: Optional[RunContext] = None,
        faults: Optional[ServiceFaultPlan] = None,
        health: Optional[HealthPolicy] = None,
        spill_dir: Optional[Union[str, Path]] = None,
        memory_budget: Optional[int] = None,
    ) -> Tuple["ConditionService", RecoveryStats]:
        """Rebuild a crashed shard from its write-ahead journal.

        The recovery invariants:

        * a damaged journal (torn tail, bad-CRC record) is truncated to
          its longest valid prefix — reported, never raised;
        * every durable completion is re-answered **bit-identically**
          (same ids, same payloads, same dedup flags and latencies) and
          re-stored under its original completion time;
        * the interrupted round, if any, is re-executed through the
          engine at its journaled logical time, with the coalescing
          memo pre-seeded from durable completions so payer/dedup
          structure is preserved;
        * accepts that never reached a round are re-enqueued;
        * the ticket counter, logical clock, and per-tenant quota state
          (pending and lifetime budgets) are restored, so a restart
          cannot be used to reset budgets and the resumed submission
          stream reproduces the uninterrupted run exactly.

        Returns:
            ``(service, stats)`` — the rebuilt service (journaling to
            the same file) and a :class:`RecoveryStats` describing what
            was replayed, re-executed, re-enqueued and truncated.

        Raises:
            JournalError: when the journal file itself cannot be read
                or truncated.
        """
        journal = Path(journal)
        scan = read_journal(journal)
        if scan.truncated_bytes:
            truncate_journal(journal, scan.valid_bytes)

        accepts: Dict[int, Tuple[float, Submission]] = {}
        completions: Dict[int, Tuple[float, Response]] = {}
        rounds: List[Tuple[float, Tuple[int, ...]]] = []
        stream_records: List[tuple] = []
        clock = 0.0
        for record in scan.records:
            kind = record[0]
            if kind == "accept":
                _, sid, now, submission = record
                accepts[sid] = (now, submission)
            elif kind == "round":
                _, now, member_ids = record
                rounds.append((now, tuple(member_ids)))
            elif kind == "complete":
                _, sid, now, response = record
                completions[sid] = (now, response)
            elif kind == "cref":
                # A completion sharing an earlier payload.
                _, sid, now, ref_sid, dedup, latency = record
                base = completions.get(ref_sid)
                accepted = accepts.get(sid)
                if (
                    accepted is not None
                    and base is not None
                    and isinstance(base[1], Completed)
                ):
                    ticket = Ticket(sid, accepted[1].tenant, accepted[0])
                    completions[sid] = (
                        now,
                        Completed(
                            ticket, base[1].result,
                            dedup=dedup, latency=latency,
                        ),
                    )
            elif kind == "chunk":
                now = record[4]
                stream_records.append(record)
            else:  # sub
                now = record[2]
                stream_records.append(record)
            clock = max(clock, now)

        service = cls(
            traces,
            quota=quota,
            capacity=capacity,
            interactive_reserve=interactive_reserve,
            batch_size=batch_size,
            jobs=jobs,
            result_ttl=result_ttl,
            clock=LogicalClock(start=clock),
            profile=profile,
            context=context,
            journal=journal,
            faults=faults,
            health=health,
            spill_dir=spill_dir,
            memory_budget=memory_budget,
        )
        if accepts:
            service._next_id = max(accepts) + 1
        service._pump_index = len(rounds)

        # Streams rebuild from their durable chunk/sub records, in
        # journal order (re-pushing is idempotent by seq; subscription
        # ids reattach from the records).  One catch-up advance then
        # re-derives every streamed wake event — bit-identical to the
        # pre-crash run, because streamed evaluation is invariant to
        # how arrivals were chunked into rounds.
        for record in stream_records:
            if record[0] == "chunk":
                _, tenant, stream, seq, _, rates, samples = record
                service._ingest.push(
                    tenant, stream, seq, samples, rate_hz=rates,
                    journal=False,
                )
            else:
                _, sub_id, _, submission = record
                service._ingest.subscribe(
                    submission, journal=False, sub_id=sub_id
                )
        if service._ingest.dirty:
            service._ingest.advance()

        # Quota state: every durable accept charged the tenant's
        # lifetime budget and took a pending slot ...
        for _, (_, submission) in accepts.items():
            service._admission.on_accepted(submission.tenant)
            service._metrics.submitted += 1
            service._metrics.accepted += 1

        # ... and every durable completion had already left the queue.
        replayed: List[Response] = []
        for sid, (completed_at, response) in completions.items():
            accepted = accepts.get(sid)
            if accepted is not None:
                service._admission.on_scheduled(accepted[1].tenant)
            if isinstance(response, Completed):
                service._metrics.on_completed(response.latency, response.dedup)
                # Seed the coalescing memo (payers only — they carry
                # the authoritative result) and the journal's
                # result-reference map, so post-recovery coalescing
                # and journaling behave exactly as before the crash.
                if not response.dedup and accepted is not None:
                    service._scheduler.seed_memo(
                        accepted[1], response.result
                    )
                service._remember_result(response.result, sid)
            elif isinstance(response, Cancelled):
                service._metrics.cancelled += 1
            else:
                service._metrics.failed += 1
            service._store.put(sid, response, completed_at)
            replayed.append(response)

        # Re-execute interrupted rounds at their original logical time.
        # Normally only the last round can be incomplete (completions
        # flush at round end), but injected journal errors can lose an
        # earlier round's completions too — handle all of them.
        reexecuted: List[Response] = []
        in_rounds = set()
        for round_now, member_ids in rounds:
            in_rounds.update(member_ids)
            missing = [
                sid
                for sid in member_ids
                if sid not in completions and sid in accepts
            ]
            if not missing:
                continue
            entries = [
                (
                    Ticket(sid, accepts[sid][1].tenant, accepts[sid][0]),
                    accepts[sid][1],
                )
                for sid in missing
            ]
            for ticket, _ in entries:
                service._admission.on_scheduled(ticket.tenant)
            responses, engine_runs = service._scheduler.run_batch(
                entries, now=round_now
            )
            service._metrics.engine_runs += engine_runs
            for response in responses:
                if isinstance(response, Completed):
                    service._metrics.on_completed(
                        response.latency, response.dedup
                    )
                else:
                    service._metrics.failed += 1
                service._store.put(
                    response.ticket.submission_id, response, round_now
                )
            service._journal_responses(round_now, responses)
            service._journal_flush()
            reexecuted.extend(responses)

        # Accepts that never reached a round go back in the queue,
        # bypassing capacity checks — they were admitted pre-crash.
        requeued: List[int] = []
        for sid, (accepted_at, submission) in accepts.items():
            if sid in completions or sid in in_rounds:
                continue
            ticket = Ticket(sid, submission.tenant, accepted_at)
            service._queue.restore((ticket, submission), submission.lane)
            requeued.append(sid)

        stats = RecoveryStats(
            journal_bytes=scan.total_bytes,
            valid_bytes=scan.valid_bytes,
            truncated_bytes=scan.truncated_bytes,
            truncation_reason=scan.reason,
            records=len(scan.records),
            accepts=len(accepts),
            rounds=len(rounds),
            completions=len(completions),
            replayed=tuple(replayed),
            reexecuted=tuple(reexecuted),
            requeued=tuple(requeued),
            next_id=service._next_id,
            clock=clock,
        )
        return service, stats
