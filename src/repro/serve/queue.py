"""The service's bounded two-lane submission queue.

Backpressure is structural, not exceptional: :meth:`LaneQueue.offer`
returns ``False`` when a submission cannot be queued, and the service
turns that into a structured ``Rejected(reason="queue_full" |
"bulk_backpressure")`` response.

The interactive lane gets two guarantees a single FIFO cannot give:

* **reserved capacity** — the last ``interactive_reserve`` slots of the
  queue are never granted to bulk submissions, so a bulk flood leaves
  room for small interactive requests;
* **strict priority** — :meth:`take` drains the interactive lane first
  (FIFO within each lane), so interactive work rides the next batch.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, List, TypeVar

from repro.errors import ServiceError
from repro.serve.submission import Lane

T = TypeVar("T")


class LaneQueue(Generic[T]):
    """Bounded FIFO pair with interactive priority and reserved slots.

    Args:
        capacity: Total queued submissions allowed across both lanes.
        interactive_reserve: Slots (out of ``capacity``) only the
            interactive lane may claim.  Bulk offers are refused once
            queue depth reaches ``capacity - interactive_reserve``.

    Raises:
        ServiceError: on a non-positive capacity or a reserve that
            leaves bulk no room at all.
    """

    def __init__(self, capacity: int, interactive_reserve: int = 0):
        if capacity <= 0:
            raise ServiceError(f"queue capacity must be positive, got {capacity}")
        if not 0 <= interactive_reserve < capacity:
            raise ServiceError(
                f"interactive reserve must be in [0, capacity), got "
                f"{interactive_reserve} with capacity {capacity}"
            )
        self.capacity = capacity
        self.interactive_reserve = interactive_reserve
        self._lanes: dict[Lane, Deque[T]] = {
            Lane.INTERACTIVE: deque(),
            Lane.BULK: deque(),
        }

    def __len__(self) -> int:
        return sum(len(q) for q in self._lanes.values())

    def depth(self, lane: Lane) -> int:
        """Queued submissions in one lane."""
        return len(self._lanes[lane])

    def offer(self, item: T, lane: Lane) -> bool:
        """Queue ``item``; False when its lane has no capacity left.

        Bulk offers respect the interactive reserve; interactive offers
        may use every slot.
        """
        depth = len(self)
        limit = (
            self.capacity
            if lane is Lane.INTERACTIVE
            else self.capacity - self.interactive_reserve
        )
        if depth >= limit:
            return False
        self._lanes[lane].append(item)
        return True

    def restore(self, item: T, lane: Lane) -> None:
        """Re-enqueue an already-admitted item, ignoring capacity.

        Crash recovery uses this for journaled accepts that never
        reached a scheduling round: they were admitted before the
        crash, so they must not be re-subjected to capacity checks a
        smaller post-restart queue might fail.
        """
        self._lanes[lane].append(item)

    def retract(self, lane: Lane) -> None:
        """Undo the most recent :meth:`offer` on ``lane``.

        The service offers before journaling so ticket ids stay in
        queue order; when the journal append then fails, the entry must
        come back out — the tenant got a rejection, not a ticket.
        """
        if self._lanes[lane]:
            self._lanes[lane].pop()

    def take(self, limit: int) -> List[T]:
        """Dequeue up to ``limit`` items, interactive lane first."""
        taken: List[T] = []
        for lane in (Lane.INTERACTIVE, Lane.BULK):
            queue = self._lanes[lane]
            while queue and len(taken) < limit:
                taken.append(queue.popleft())
        return taken

    def drain(self) -> List[T]:
        """Dequeue everything, interactive lane first."""
        return self.take(len(self))
