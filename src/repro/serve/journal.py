"""The service's write-ahead journal: durability for the fleet shard.

A crashed :class:`~repro.serve.service.ConditionService` used to forget
every accepted submission and every undelivered result.  The journal
makes the service crash-recoverable with the same discipline the hub
tier's reliable link (:mod:`repro.hub.reliability`) applies on the
wire: every record is framed, CRC-checksummed, and validated before it
is trusted.

Record framing (little-endian)::

    u32 payload length | u32 crc32(payload) | payload

The payload is a pickled tuple whose first element names the record
kind:

* ``("accept", submission_id, now, submission)`` — appended *before*
  the ticket is returned to the tenant;
* ``("round", now, member_ids)`` — one scheduling round began at
  logical time ``now`` over exactly these tickets; flushed (with every
  buffered accept) before the round executes, so an interrupted round
  is recoverable with its original batch and its original clock value;
* ``("complete", submission_id, now, response)`` — a terminal
  :class:`~repro.serve.submission.Response`, payload included;
* ``("cref", submission_id, now, payer_id, dedup, latency)`` — a
  completion whose result object is *shared* with an earlier
  completion (fingerprint dedup / memo hits); the journal stores one
  payload per unique result and references it thereafter, which is
  what keeps journal size proportional to engine runs rather than
  fleet size;
* ``("chunk", tenant, stream, seq, now, rate_hz, samples)`` — one
  device chunk applied to a stream buffer, flushed with the pump round
  that made it durable; streams rebuild by re-pushing these in journal
  order (idempotent by per-stream ``seq``);
* ``("sub", subscription_id, now, subscription)`` — a streaming
  subscription was registered.  No per-subscription results are
  journaled: streamed evaluation is arrival-chunking invariant, so
  recovery re-derives wake events from the rebuilt buffers.

Record kinds version forward: a reader encountering a validly framed
record whose kind it does not know *skips* it (counted on the scan)
instead of treating it as damage, so journals carrying newer record
kinds stay readable by older tooling.

Durability batching follows the service's pump cadence: appends buffer
in memory and :meth:`JournalWriter.flush` (write + fsync) runs at round
boundaries.  A simulated crash (:meth:`JournalWriter.crash`) discards
the buffer — or flushes a deliberate prefix of it to model a torn tail
record.  :func:`read_journal` recovers the longest valid prefix of a
damaged journal: a torn tail or a bad-CRC record stops the scan and is
reported, never raised.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.errors import JournalError
from repro.serve.submission import Response

#: Record header: payload length, then CRC-32 of the payload.
HEADER = struct.Struct("<II")

#: Record kinds this reader understands.  A validly framed tuple whose
#: kind is *not* listed here is skipped with a count, not damage — the
#: forward-compatibility contract that lets old tooling read journals
#: written with newer record kinds.
RECORD_KINDS = ("accept", "round", "complete", "cref", "chunk", "sub")

#: Pickle protocol for record payloads (stable across 3.8+).
_PICKLE_PROTOCOL = 4


def encode_record(record: tuple) -> bytes:
    """Frame one record tuple: length prefix + CRC + pickled payload."""
    payload = pickle.dumps(record, protocol=_PICKLE_PROTOCOL)
    return HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass(frozen=True)
class JournalScan:
    """Outcome of scanning a journal file.

    Attributes:
        records: The longest valid prefix of decoded record tuples.
        valid_bytes: Bytes of the file covered by ``records``.
        total_bytes: File size; ``total_bytes - valid_bytes`` is the
            damaged/torn suffix.
        reason: Why the scan stopped early (``"torn_tail"`` for a
            record cut short, ``"corrupt_record"`` for a CRC or decode
            failure), or ``None`` for a clean journal.
        skipped_records: Validly framed records whose kind this reader
            does not know — written by newer tooling and skipped, not
            treated as damage.  Their bytes count as valid.
    """

    records: Tuple[tuple, ...]
    valid_bytes: int
    total_bytes: int
    reason: Optional[str] = None
    skipped_records: int = 0

    @property
    def truncated_bytes(self) -> int:
        """Bytes past the valid prefix (0 for a clean journal)."""
        return self.total_bytes - self.valid_bytes


def read_journal(path: Union[str, Path]) -> JournalScan:
    """Scan a journal, returning the longest valid record prefix.

    Never raises on damage: a torn tail (partial header or payload) or
    a corrupted record (CRC mismatch, undecodable or malformed payload)
    simply ends the prefix, with the reason reported on the scan.  A
    validly framed record of an *unknown kind* — a tuple headed by an
    unrecognized string — is not damage: it is counted on
    ``skipped_records`` and the scan continues, so journals written
    with newer record kinds stay readable.

    Raises:
        JournalError: only when the file itself cannot be read.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as error:
        raise JournalError(f"cannot read journal {path}: {error}") from None
    records: List[tuple] = []
    offset = 0
    reason: Optional[str] = None
    skipped = 0
    while offset < len(data):
        if offset + HEADER.size > len(data):
            reason = "torn_tail"
            break
        length, crc = HEADER.unpack_from(data, offset)
        start = offset + HEADER.size
        if length == 0 or start + length > len(data):
            reason = "torn_tail"
            break
        payload = data[start:start + length]
        if zlib.crc32(payload) != crc:
            reason = "corrupt_record"
            break
        try:
            record = pickle.loads(payload)
        except Exception:
            reason = "corrupt_record"
            break
        if not (
            isinstance(record, tuple)
            and record
            and isinstance(record[0], str)
        ):
            reason = "corrupt_record"
            break
        if record[0] not in RECORD_KINDS:
            skipped += 1
            offset = start + length
            continue
        records.append(record)
        offset = start + length
    return JournalScan(
        records=tuple(records),
        valid_bytes=offset,
        total_bytes=len(data),
        reason=reason,
        skipped_records=skipped,
    )


def truncate_journal(path: Union[str, Path], valid_bytes: int) -> None:
    """Cut a journal back to its valid prefix before re-appending."""
    try:
        with open(path, "r+b") as handle:
            handle.truncate(valid_bytes)
    except OSError as error:
        raise JournalError(
            f"cannot truncate journal {path}: {error}"
        ) from None


class JournalWriter:
    """Buffered, CRC-framed, fsync-batched journal appender.

    Appends accumulate in memory; :meth:`flush` writes them and fsyncs,
    making everything up to that point durable.  This matches the
    service's batching: one flush per scheduling round, so the journal
    adds one write+fsync per ``pump()``, not per submission.

    Args:
        path: Journal file, opened for append (created if missing).
        faults: Optional
            :class:`~repro.serve.faults.ServiceFaultInjector` consulted
            per append — lets robustness tests inject deterministic
            journal I/O errors.
    """

    def __init__(self, path: Union[str, Path], faults=None):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._file = open(self.path, "ab")
        except OSError as error:
            raise JournalError(
                f"cannot open journal {self.path}: {error}"
            ) from None
        self._faults = faults
        self._buffer = bytearray()
        self._closed = False
        self.appended_records = 0
        self.flushes = 0

    @property
    def pending_bytes(self) -> int:
        """Buffered bytes not yet made durable by a flush."""
        return len(self._buffer)

    def append(self, record: tuple) -> None:
        """Buffer one record for the next flush.

        Raises:
            JournalError: when the writer is closed or the fault plan
                injects an append error.
        """
        if self._closed:
            raise JournalError(f"journal {self.path} is closed")
        if self._faults is not None and self._faults.journal_append_fails():
            raise JournalError(
                f"injected journal append error (record "
                f"{self.appended_records})"
            )
        self._buffer += encode_record(record)
        self.appended_records += 1

    def flush(self) -> None:
        """Write buffered records and fsync — the durability boundary."""
        if self._closed:
            raise JournalError(f"journal {self.path} is closed")
        if self._buffer:
            try:
                self._file.write(bytes(self._buffer))
                self._file.flush()
                os.fsync(self._file.fileno())
            except OSError as error:
                raise JournalError(
                    f"journal flush failed on {self.path}: {error}"
                ) from None
            self._buffer.clear()
        self.flushes += 1

    def crash(self, torn_bytes: Optional[int] = None) -> None:
        """Simulate process death: drop (or tear) the un-flushed buffer.

        Args:
            torn_bytes: When set, this many buffered bytes reach the
                file before the "crash" — cutting mid-record and
                leaving exactly the torn tail :func:`read_journal`
                must survive.  ``None`` loses the whole buffer.
        """
        if self._closed:
            return
        if torn_bytes and self._buffer:
            torn = bytes(self._buffer[: max(0, int(torn_bytes))])
            try:
                self._file.write(torn)
                self._file.flush()
                os.fsync(self._file.fileno())
            except OSError:
                pass
        self._buffer.clear()
        self._file.close()
        self._closed = True

    def close(self) -> None:
        """Flush outstanding records and close the file (idempotent)."""
        if self._closed:
            return
        try:
            self.flush()
        finally:
            self._file.close()
            self._closed = True


@dataclass(frozen=True)
class RecoveryStats:
    """What :meth:`ConditionService.recover` rebuilt from a journal.

    Attributes:
        journal_bytes: Journal file size at recovery time.
        valid_bytes: Bytes of the valid record prefix that was kept.
        truncated_bytes: Damaged/torn suffix bytes cut away.
        truncation_reason: ``"torn_tail"`` / ``"corrupt_record"`` when
            the journal was damaged, else ``None``.
        records: Valid records replayed.
        accepts: Accepted submissions found durable.
        rounds: Scheduling rounds found durable (drivers use this to
            resume pump cadence past boundaries that already ran).
        completions: Terminal responses re-answered from the journal.
        replayed: Those re-answered responses, bit-identical to the
            pre-crash originals, in journal order.
        reexecuted: Responses of the interrupted round the recovery
            re-ran through the engine at its original logical time.
        requeued: Submission ids re-enqueued for normal scheduling
            (accepted, durable, but never reached a round).
        next_id: The restored ticket counter.
        clock: The restored logical-clock value.
    """

    journal_bytes: int
    valid_bytes: int
    truncated_bytes: int
    truncation_reason: Optional[str]
    records: int
    accepts: int
    rounds: int
    completions: int
    replayed: Tuple[Response, ...] = ()
    reexecuted: Tuple[Response, ...] = ()
    requeued: Tuple[int, ...] = field(default_factory=tuple)
    next_id: int = 1
    clock: float = 0.0

    def describe(self) -> str:
        """One-line human-readable recovery summary."""
        damage = (
            f", truncated {self.truncated_bytes} bytes "
            f"({self.truncation_reason})"
            if self.truncated_bytes
            else ""
        )
        return (
            f"recovered {self.records} records ({self.accepts} accepts, "
            f"{self.completions} completions): {len(self.replayed)} "
            f"re-answered, {len(self.reexecuted)} re-executed, "
            f"{len(self.requeued)} re-enqueued{damage}"
        )
