"""Per-tenant admission control for the fleet service.

Two independent limits, both returning structured reason codes instead
of raising:

* **pending quota** — how many of a tenant's submissions may sit in the
  queue at once.  Protects the shared queue from one chatty device.
* **budget** — an optional lifetime submission cap per tenant (the
  hook the ROADMAP's per-tenant billing follow-on will price from).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ServiceError


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits applied uniformly to every tenant.

    Attributes:
        max_pending: Queued (accepted but not yet scheduled)
            submissions one tenant may hold at once.
        max_submissions: Optional lifetime cap on accepted submissions
            per tenant; ``None`` means unmetered.
    """

    max_pending: int = 8
    max_submissions: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_pending <= 0:
            raise ServiceError(
                f"max_pending must be positive, got {self.max_pending}"
            )
        if self.max_submissions is not None and self.max_submissions <= 0:
            raise ServiceError(
                f"max_submissions must be positive, got {self.max_submissions}"
            )


class AdmissionController:
    """Tracks per-tenant pending counts and lifetime budgets.

    The service asks :meth:`admit` before queueing and reports
    lifecycle transitions back through :meth:`on_accepted` /
    :meth:`on_scheduled`, keeping the controller the single source of
    truth for quota state.
    """

    def __init__(self, quota: TenantQuota):
        self.quota = quota
        self._pending: Counter = Counter()
        self._accepted: Counter = Counter()

    def admit(self, tenant: str) -> Optional[str]:
        """``None`` when the tenant may queue one more submission,
        otherwise the rejection reason code."""
        if (
            self.quota.max_submissions is not None
            and self._accepted[tenant] >= self.quota.max_submissions
        ):
            return "tenant_budget"
        if self._pending[tenant] >= self.quota.max_pending:
            return "tenant_quota"
        return None

    def on_accepted(self, tenant: str) -> None:
        """A submission entered the queue."""
        self._pending[tenant] += 1
        self._accepted[tenant] += 1

    def on_requeued(self, tenant: str) -> None:
        """Crash recovery put an already-accepted submission back.

        Restores the pending slot without double-charging the lifetime
        budget (the original :meth:`on_accepted` already charged it and
        the journal replay reconstructs that charge).
        """
        self._pending[tenant] += 1

    def on_scheduled(self, tenant: str) -> None:
        """A queued submission left the queue for the scheduler."""
        count = self._pending[tenant]
        if count <= 1:
            # Counter-hygiene: drop zeroed tenants so pending() stays
            # an honest view of who is actually waiting.
            self._pending.pop(tenant, None)
        else:
            self._pending[tenant] = count - 1

    def pending(self) -> Dict[str, int]:
        """Currently queued submissions per tenant (non-zero only)."""
        return dict(self._pending)

    def accepted(self) -> Dict[str, int]:
        """Lifetime accepted submissions per tenant."""
        return dict(self._accepted)
