"""Duty Cycling (Section 4.2).

"The applications wake-up at fixed time intervals to collect sensor
data for 4 seconds and run the event detection algorithms.  If an action
is detected, the phone is kept awake for another 4 seconds, otherwise it
goes to sleep for N seconds.  ...  As the sleep interval increases,
more power is saved but recall suffers."

The sleep interval covers the sleep *round trip*: the 1 s sleep
transition and the 1 s wake transition eat into it, which is why very
short intervals cost more than staying awake (Section 5.4: a 2 s
interval averaged 339 mW versus 323 mW Always Awake).

No hub MCU is charged — plain duty cycling needs no sensor hub.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.apps.base import Detection, SensingApplication
from repro.errors import SimulationError
from repro.power.phone import NEXUS4, PhonePowerProfile
from repro.sim.configs.base import SensingConfiguration
from repro.sim.engine import RunContext
from repro.sim.results import SimulationResult
from repro.sim.simulator import DEFAULT_HOLD_S, evaluate
from repro.traces.base import Trace

#: The paper's sleep intervals (seconds).
PAPER_SLEEP_INTERVALS = (2.0, 5.0, 10.0, 20.0, 30.0)


class DutyCycling(SensingConfiguration):
    """Fixed-interval sensing with detection-triggered extension.

    Args:
        sleep_interval_s: Seconds between the end of one awake window
            and the start of the next (transitions included).
        sense_s: Length of each sensing window (paper: 4 s).
        hold_s: Extension granted while detections keep arriving.
    """

    def __init__(
        self,
        sleep_interval_s: float,
        sense_s: float = 4.0,
        hold_s: float = DEFAULT_HOLD_S,
    ):
        if sleep_interval_s <= 0:
            raise SimulationError("sleep interval must be positive")
        self.sleep_interval_s = sleep_interval_s
        self.sense_s = sense_s
        self.hold_s = hold_s
        self.name = f"duty_cycling_{sleep_interval_s:g}s"

    def run(
        self,
        app: SensingApplication,
        trace: Trace,
        profile: PhonePowerProfile = NEXUS4,
        context: Optional[RunContext] = None,
    ) -> SimulationResult:
        def detect(span):
            if context is not None:
                return context.detections(app, trace, [span])
            return app.detect(trace, [span])

        windows: List[Tuple[float, float]] = []
        detections: List[Detection] = []
        cursor = 0.0
        while cursor < trace.duration:
            start = cursor
            end = min(start + self.sense_s, trace.duration)
            # Extend while the most recent stretch still detects events.
            while True:
                window_detections = detect((start, end))
                recent = [
                    d for d in window_detections if d.span[1] >= end - self.hold_s
                ]
                if recent and end < trace.duration:
                    end = min(end + self.hold_s, trace.duration)
                else:
                    break
            windows.append((start, end))
            detections.extend(window_detections)
            cursor = end + self.sleep_interval_s
        return evaluate(
            config_name=self.name,
            app=app,
            trace=trace,
            awake_windows=windows,
            detections=detections,
            profile=profile,
            context=context,
        )
