"""Always Awake: the phone never sleeps.

The paper's power ceiling (~323 mW): every other approach is judged by
how much of the gap between this and Oracle it closes.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.base import SensingApplication
from repro.power.phone import NEXUS4, PhonePowerProfile
from repro.sim.configs.base import SensingConfiguration
from repro.sim.engine import RunContext
from repro.sim.results import SimulationResult
from repro.sim.simulator import evaluate
from repro.traces.base import Trace


class AlwaysAwake(SensingConfiguration):
    """Phone awake for the entire trace; detector sees everything."""

    name = "always_awake"

    def run(
        self,
        app: SensingApplication,
        trace: Trace,
        profile: PhonePowerProfile = NEXUS4,
        context: Optional[RunContext] = None,
    ) -> SimulationResult:
        return evaluate(
            config_name=self.name,
            app=app,
            trace=trace,
            awake_windows=[(0.0, trace.duration)],
            profile=profile,
            context=context,
        )
