"""Predefined Activity (Section 4.2).

"This configuration simulates the Android's built-in significant motion
detector.  We constructed simple classifiers to wake up the device and
invoke the callback method in the application when significant activity
is detected (significant acceleration or sound)."

The two generic triggers are themselves expressed as hub pipelines (the
manufacturer hardwires them, but they run on the same MCU):

* **significant motion** — per-axis short-window standard deviation,
  summed across axes, against a threshold: any vigorous motion fires,
  regardless of what the motion is;
* **significant sound** — per-window RMS loudness against a threshold.

Thresholds default to values calibrated for 100 % recall at minimum
power over the standard corpora (Section 5.3 calibrates PA the same
way and notes this over-fits in PA's favour); use
:mod:`repro.sim.calibrate` to recalibrate for other traces.
"""

from __future__ import annotations

from typing import Optional

from repro.api.branch import ProcessingBranch
from repro.api.pipeline import ProcessingPipeline
from repro.api.stubs import MinThreshold, Statistic, SumOf, Window
from repro.apps.base import SensingApplication
from repro.errors import SimulationError
from repro.hub.faults import FaultPlan
from repro.hub.link import LinkModel, UART_DEBUG
from repro.hub.mcu import MSP430
from repro.hub.reliability import ReliabilityPolicy
from repro.power.phone import NEXUS4, PhonePowerProfile
from repro.sensors.channels import ACC_X, ACC_Y, ACC_Z, MIC
from repro.sim.configs.base import SensingConfiguration
from repro.sim.engine import RunContext
from repro.sim.results import SimulationResult
from repro.sim.simulator import (
    DEFAULT_RAW_BUFFER_S,
    TRIGGERED_HOLD_S,
    compile_app_condition,
    evaluate,
    extend_for_buffer,
    faulty_condition_windows,
    run_wakeup_condition,
    windows_from_wake_times,
)
from repro.traces.base import Trace

#: Default significant-motion threshold: summed per-axis std over 0.5 s
#: windows.  Idle noise sums to ~0.18; the gentlest event of interest
#: (a posture transition) reaches ~1.0.  The calibration sweep over the
#: standard robot corpus (repro.sim.calibrate) keeps 100 % recall up to
#: ~0.9; 0.8 is that optimum with a safety margin.
DEFAULT_MOTION_THRESHOLD = 0.8

#: Default significant-sound threshold: per-32 ms-window RMS amplitude.
#: Calibrated over the standard audio corpus: backgrounds (including
#: coffee-shop babble) stay below ~0.025 while the quietest event
#: windows exceed 0.03.
DEFAULT_SOUND_THRESHOLD = 0.03

_MOTION_WINDOW = 25  # 0.5 s at 50 Hz
_SOUND_WINDOW = 256  # 32 ms at 8 kHz


def significant_motion_pipeline(
    threshold: float = DEFAULT_MOTION_THRESHOLD,
) -> ProcessingPipeline:
    """The generic significant-motion trigger as a hub pipeline."""
    pipeline = ProcessingPipeline()
    for axis in (ACC_X, ACC_Y, ACC_Z):
        pipeline.add(
            ProcessingBranch(axis)
            .add(Window(_MOTION_WINDOW, hop=_MOTION_WINDOW // 2))
            .add(Statistic("std"))
        )
    pipeline.add(SumOf())
    pipeline.add(MinThreshold(threshold))
    return pipeline


def significant_sound_pipeline(
    threshold: float = DEFAULT_SOUND_THRESHOLD,
) -> ProcessingPipeline:
    """The generic significant-sound trigger as a hub pipeline."""
    pipeline = ProcessingPipeline()
    pipeline.add(
        ProcessingBranch(MIC)
        .add(Window(_SOUND_WINDOW))
        .add(Statistic("rms"))
        .add(MinThreshold(threshold))
    )
    return pipeline


class PredefinedActivity(SensingConfiguration):
    """Generic manufacturer trigger + application detector on wake-up.

    Args:
        motion_threshold: Significant-motion threshold (accel apps).
        sound_threshold: Significant-sound threshold (audio apps).
        hold_s: Awake hold per wake-up.
        fault_plan: Optional system-fault schedule; the manufacturer's
            hardwired trigger rides the same MCU and link, so it fails
            the same ways a Sidewinder condition does.
        reliability: Reliable-transport policy under faults; ``None``
            models naive delivery.
        link: Hub-to-phone bus the fault model runs over.
    """

    name = "predefined_activity"

    def __init__(
        self,
        motion_threshold: float = DEFAULT_MOTION_THRESHOLD,
        sound_threshold: float = DEFAULT_SOUND_THRESHOLD,
        hold_s: float = TRIGGERED_HOLD_S,
        fault_plan: Optional[FaultPlan] = None,
        reliability: Optional[ReliabilityPolicy] = None,
        link: LinkModel = UART_DEBUG,
    ):
        self.motion_threshold = motion_threshold
        self.sound_threshold = sound_threshold
        self.hold_s = hold_s
        self.fault_plan = fault_plan
        self.reliability = reliability
        self.link = link

    def pipeline_for(self, app: SensingApplication) -> ProcessingPipeline:
        """Pick the matching generic trigger for an application."""
        kinds = {channel.split("_")[0] for channel in app.channels}
        if kinds <= {"ACC"}:
            return significant_motion_pipeline(self.motion_threshold)
        if kinds == {"MIC"}:
            return significant_sound_pipeline(self.sound_threshold)
        raise SimulationError(
            f"no predefined activity covers channels {app.channels}"
        )

    def run(
        self,
        app: SensingApplication,
        trace: Trace,
        profile: PhonePowerProfile = NEXUS4,
        context: Optional[RunContext] = None,
    ) -> SimulationResult:
        graph = compile_app_condition(self.pipeline_for(app), context)
        if self.fault_plan is not None:
            awake, detect, faulty = faulty_condition_windows(
                graph,
                trace,
                self.fault_plan,
                self.reliability,
                link=self.link,
                hold_s=self.hold_s,
                raw_buffer_s=DEFAULT_RAW_BUFFER_S,
                profile=profile,
                context=context,
            )
            return evaluate(
                config_name=self.name,
                app=app,
                trace=trace,
                awake_windows=awake,
                detect_windows=detect,
                mcus=(MSP430,),
                profile=profile,
                hub_wake_count=faulty.hub_event_count,
                fault_report=faulty.report,
                context=context,
            )
        wake_events = run_wakeup_condition(graph, trace, context=context)
        awake = windows_from_wake_times(
            [w.time for w in wake_events], trace.duration, self.hold_s, profile
        )
        return evaluate(
            config_name=self.name,
            app=app,
            trace=trace,
            awake_windows=awake,
            detect_windows=extend_for_buffer(awake),
            mcus=(MSP430,),
            profile=profile,
            hub_wake_count=len(wake_events),
            context=context,
        )

    def condition_graph(
        self,
        app: SensingApplication,
        context: Optional[RunContext] = None,
    ):
        """The generic trigger :meth:`run` would interpret for ``app``.

        ``None`` under fault injection (faulty runs bypass the
        fault-free hub cache); raises
        :class:`~repro.errors.SimulationError` for apps no predefined
        activity covers, exactly as :meth:`run` would.
        """
        if self.fault_plan is not None:
            return None
        return compile_app_condition(self.pipeline_for(app), context)
