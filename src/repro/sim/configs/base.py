"""Sensing-configuration interface."""

from __future__ import annotations

from typing import Optional

from repro.apps.base import SensingApplication
from repro.power.phone import NEXUS4, PhonePowerProfile
from repro.sim.engine import RunContext
from repro.sim.results import SimulationResult
from repro.traces.base import Trace


class SensingConfiguration:
    """One way of scheduling the phone and hub for an application.

    Subclasses implement :meth:`run`, producing a
    :class:`~repro.sim.results.SimulationResult` for one application on
    one trace.  Configurations are stateless across runs — the same
    instance may be reused for many (app, trace) pairs.
    """

    name: str = ""

    def run(
        self,
        app: SensingApplication,
        trace: Trace,
        profile: PhonePowerProfile = NEXUS4,
        context: Optional[RunContext] = None,
    ) -> SimulationResult:
        """Simulate ``app`` on ``trace`` under this configuration.

        Args:
            app: The application to simulate.
            trace: The trace to replay.
            profile: Phone power profile.
            context: Optional shared :class:`~repro.sim.engine.RunContext`
                that memoizes compiled condition graphs, per-trace
                channel arrays, hub runs and detector invocations
                across runs.  ``None`` (the default) behaves exactly
                like a fresh private context: same results, no sharing.
        """
        raise NotImplementedError

    def condition_graph(
        self,
        app: SensingApplication,
        context: Optional[RunContext] = None,
    ):
        """The hub condition :meth:`run` would interpret for ``app``.

        Returns the validated
        :class:`~repro.il.graph.DataflowGraph`, or ``None`` when this
        configuration runs no (fault-free, cacheable) hub condition —
        the base default.  The engine's batch prewarmer uses this to
        collect same-condition cells across traces and execute them
        tensor-major before the per-cell loop; configurations that call
        :func:`~repro.sim.simulator.run_wakeup_condition` fault-free
        should override it with exactly the graph that call will use.
        """
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
