"""The Sidewinder configuration (Section 4.2).

"For each of the applications, we constructed wake-up conditions to
invoke the application when events of interest are detected."

The application's own wake-up condition (built through the developer
API) runs on the hub; the hub places it on the cheapest feasible MCU
(Section 4.3: MSP430 for everything except the siren detector, whose
audio-rate FFTs need the LM4F120).  On each wake-up, the phone processes
the hub's raw buffer plus live data, with the precise detector providing
the final filtering.
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.base import SensingApplication
from repro.hub.fpga import HubProcessor, select_processor
from repro.hub.mcu import DEFAULT_CATALOG
from repro.power.phone import NEXUS4, PhonePowerProfile
from repro.sim.configs.base import SensingConfiguration
from repro.sim.results import SimulationResult
from repro.sim.simulator import (
    TRIGGERED_HOLD_S,
    DEFAULT_RAW_BUFFER_S,
    compile_app_condition,
    evaluate,
    extend_for_buffer,
    run_wakeup_condition,
    windows_from_wake_times,
)
from repro.traces.base import Trace


class Sidewinder(SensingConfiguration):
    """The paper's approach: custom wake-up condition on the hub.

    Args:
        hold_s: Awake hold per wake-up.
        raw_buffer_s: Pre-wake raw data the hub hands over.
        catalog: Hub processors on offer — MCUs and/or FPGAs
            (default: the paper's MSP430 + LM4F120 pair).
    """

    name = "sidewinder"

    def __init__(
        self,
        hold_s: float = TRIGGERED_HOLD_S,
        raw_buffer_s: float = DEFAULT_RAW_BUFFER_S,
        catalog: Sequence[HubProcessor] = DEFAULT_CATALOG,
    ):
        self.hold_s = hold_s
        self.raw_buffer_s = raw_buffer_s
        self.catalog = tuple(catalog)

    def run(
        self,
        app: SensingApplication,
        trace: Trace,
        profile: PhonePowerProfile = NEXUS4,
    ) -> SimulationResult:
        graph = compile_app_condition(app.build_wakeup_pipeline())
        mcu = select_processor(graph, self.catalog)
        wake_events = run_wakeup_condition(graph, trace)
        awake = windows_from_wake_times(
            [w.time for w in wake_events], trace.duration, self.hold_s, profile
        )
        return evaluate(
            config_name=self.name,
            app=app,
            trace=trace,
            awake_windows=awake,
            detect_windows=extend_for_buffer(awake, self.raw_buffer_s),
            mcus=(mcu,),
            profile=profile,
            hub_wake_count=len(wake_events),
        )
