"""The Sidewinder configuration (Section 4.2).

"For each of the applications, we constructed wake-up conditions to
invoke the application when events of interest are detected."

The application's own wake-up condition (built through the developer
API) runs on the hub; the hub places it on the cheapest feasible MCU
(Section 4.3: MSP430 for everything except the siren detector, whose
audio-rate FFTs need the LM4F120).  On each wake-up, the phone processes
the hub's raw buffer plus live data, with the precise detector providing
the final filtering.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.apps.base import SensingApplication
from repro.hub.faults import FaultPlan
from repro.hub.fpga import HubProcessor, select_processor
from repro.hub.link import LinkModel, UART_DEBUG
from repro.hub.mcu import DEFAULT_CATALOG
from repro.hub.reliability import ReliabilityPolicy
from repro.power.phone import NEXUS4, PhonePowerProfile
from repro.sim.configs.base import SensingConfiguration
from repro.sim.engine import RunContext
from repro.sim.results import SimulationResult
from repro.sim.simulator import (
    TRIGGERED_HOLD_S,
    DEFAULT_RAW_BUFFER_S,
    compile_app_condition,
    evaluate,
    extend_for_buffer,
    faulty_condition_windows,
    run_wakeup_condition,
    windows_from_wake_times,
)
from repro.traces.base import Trace


class Sidewinder(SensingConfiguration):
    """The paper's approach: custom wake-up condition on the hub.

    Args:
        hold_s: Awake hold per wake-up.
        raw_buffer_s: Pre-wake raw data the hub hands over.
        catalog: Hub processors on offer — MCUs and/or FPGAs
            (default: the paper's MSP430 + LM4F120 pair).
        fault_plan: Optional system-fault schedule (hub resets, link
            loss, flaky wake interrupts); ``None`` runs fault-free.
        reliability: Reliable-transport policy applied when faults are
            injected; ``None`` models the paper's naive fire-and-forget
            delivery (no CRC, no retries, no watchdog).
        link: Hub-to-phone bus the fault model runs over.
    """

    name = "sidewinder"

    def __init__(
        self,
        hold_s: float = TRIGGERED_HOLD_S,
        raw_buffer_s: float = DEFAULT_RAW_BUFFER_S,
        catalog: Sequence[HubProcessor] = DEFAULT_CATALOG,
        fault_plan: Optional[FaultPlan] = None,
        reliability: Optional[ReliabilityPolicy] = None,
        link: LinkModel = UART_DEBUG,
    ):
        self.hold_s = hold_s
        self.raw_buffer_s = raw_buffer_s
        self.catalog = tuple(catalog)
        self.fault_plan = fault_plan
        self.reliability = reliability
        self.link = link

    def run(
        self,
        app: SensingApplication,
        trace: Trace,
        profile: PhonePowerProfile = NEXUS4,
        context: Optional[RunContext] = None,
    ) -> SimulationResult:
        graph = compile_app_condition(app.build_wakeup_pipeline(), context)
        mcu = select_processor(graph, self.catalog)
        if self.fault_plan is not None:
            awake, detect, faulty = faulty_condition_windows(
                graph,
                trace,
                self.fault_plan,
                self.reliability,
                link=self.link,
                hold_s=self.hold_s,
                raw_buffer_s=self.raw_buffer_s,
                profile=profile,
                context=context,
            )
            return evaluate(
                config_name=self.name,
                app=app,
                trace=trace,
                awake_windows=awake,
                detect_windows=detect,
                mcus=(mcu,),
                profile=profile,
                hub_wake_count=faulty.hub_event_count,
                fault_report=faulty.report,
                context=context,
            )
        wake_events = run_wakeup_condition(graph, trace, context=context)
        awake = windows_from_wake_times(
            [w.time for w in wake_events], trace.duration, self.hold_s, profile
        )
        return evaluate(
            config_name=self.name,
            app=app,
            trace=trace,
            awake_windows=awake,
            detect_windows=extend_for_buffer(awake, self.raw_buffer_s),
            mcus=(mcu,),
            profile=profile,
            hub_wake_count=len(wake_events),
            context=context,
        )

    def condition_graph(
        self,
        app: SensingApplication,
        context: Optional[RunContext] = None,
    ):
        """The app's wake-up condition, exactly as :meth:`run` compiles it.

        ``None`` under fault injection: faulty runs replay the
        condition through the round-level fault simulator, so their
        hub work must not be batch-prewarmed into the fault-free cache.
        """
        if self.fault_plan is not None:
            return None
        return compile_app_condition(app.build_wakeup_pipeline(), context)
