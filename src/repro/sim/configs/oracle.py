"""Oracle: the hypothetical ideal wake-up mechanism (Section 4.2).

"A hypothetical ideal implementation that only wakes up when the event
of interest occurs.  Such a wake-up condition would achieve perfect
detection precision and recall, with the lowest possible power
consumption.  The difference between the power consumption of this
method and the Sidewinder configuration provides an upper bound on the
potential additional benefits of custom code offloading."

No hub MCU is charged: the Oracle is an ideal, not an implementation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.apps.base import Detection, SensingApplication
from repro.power.phone import NEXUS4, PhonePowerProfile
from repro.power.timeline import merge_windows
from repro.sim.configs.base import SensingConfiguration
from repro.sim.engine import RunContext
from repro.sim.results import SimulationResult
from repro.sim.simulator import evaluate
from repro.traces.base import Trace


class Oracle(SensingConfiguration):
    """Wakes exactly for each ground-truth event of interest.

    Args:
        processing_s: Awake time charged per event beyond the event's
            own duration (the application still has to *process* the
            event once awake).
    """

    name = "oracle"

    def __init__(self, processing_s: float = 1.0):
        self.processing_s = processing_s

    def run(
        self,
        app: SensingApplication,
        trace: Trace,
        profile: PhonePowerProfile = NEXUS4,
        context: Optional[RunContext] = None,
    ) -> SimulationResult:
        if context is not None:
            events = list(context.events_of_interest(app, trace))
        else:
            events = app.events_of_interest(trace)
        windows: List[Tuple[float, float]] = [
            (event.start, min(event.end + self.processing_s, trace.duration))
            for event in events
        ]
        windows = merge_windows(windows, min_gap=2.0 * profile.transition_s)
        detections = [
            Detection(time=event.start, end=event.end, label=event.label)
            for event in events
        ]
        return evaluate(
            config_name=self.name,
            app=app,
            trace=trace,
            awake_windows=windows,
            detections=detections,
            profile=profile,
            context=context,
        )
