"""Batching (Section 4.2).

"Similar to Duty Cycling, except when the phone is asleep sensor data is
cached.  When the device wakes, a batch of data from the sleep cycle is
given to the application."

Recall is perfect — the detector eventually sees every sample — but
detection is *late* by up to one sleep interval, which is why the paper
rules batching out for timeliness-constrained applications
(Section 5.4).  The hub MCU that does the caching (an MSP430) is charged
in the power model (Section 4.3).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.apps.base import Detection, SensingApplication
from repro.errors import SimulationError
from repro.hub.link import LinkModel, batch_transfer_seconds
from repro.hub.mcu import MSP430
from repro.power.phone import NEXUS4, PhonePowerProfile
from repro.sim.configs.base import SensingConfiguration
from repro.sim.engine import RunContext
from repro.sim.results import SimulationResult
from repro.sim.simulator import DEFAULT_HOLD_S, evaluate
from repro.traces.base import Trace


class Batching(SensingConfiguration):
    """Sleep while the hub buffers; wake to process each batch.

    Args:
        sleep_interval_s: Batch length / sleep stretch (paper: same
            intervals as duty cycling; Figure 5 shows 10 s).
        process_s: Awake time to chew through one batch.
        hold_s: Extension granted while detections keep arriving (the
            application stays up to act on what it found).
        overlap_s: Batch overlap so events straddling a batch boundary
            are still seen whole by the detector.  The default covers
            the longest event signature plus detector smoothing context
            (a posture transition needs ~3 s of surrounding signal).
        link: Optional hub-to-phone link model (Section 3.4).  When
            given, each wake-up also pays the time to pull the buffered
            batch across the link — negligible for accelerometer data
            over the debug UART, seconds per batch for audio.
    """

    def __init__(
        self,
        sleep_interval_s: float,
        process_s: float = 4.0,
        hold_s: float = DEFAULT_HOLD_S,
        overlap_s: float = 4.0,
        link: Optional[LinkModel] = None,
    ):
        if sleep_interval_s <= 0:
            raise SimulationError("sleep interval must be positive")
        self.sleep_interval_s = sleep_interval_s
        self.process_s = process_s
        self.hold_s = hold_s
        self.overlap_s = overlap_s
        self.link = link
        self.name = f"batching_{sleep_interval_s:g}s"

    def run(
        self,
        app: SensingApplication,
        trace: Trace,
        profile: PhonePowerProfile = NEXUS4,
        context: Optional[RunContext] = None,
    ) -> SimulationResult:
        def detect(span):
            if context is not None:
                return context.detections(app, trace, [span])
            return app.detect(trace, [span])

        transfer_s = 0.0
        if self.link is not None:
            transfer_s = batch_transfer_seconds(
                app.channels, self.sleep_interval_s, self.link
            )
        windows: List[Tuple[float, float]] = []
        detections: List[Detection] = []
        batch_start = 0.0
        cursor = self.sleep_interval_s  # first wake after one batch
        while batch_start < trace.duration:
            wake_at = min(cursor, trace.duration)
            awake_end = min(
                wake_at + self.process_s + transfer_s, trace.duration
            )
            # Extend while fresh detections keep arriving; each
            # extension re-processes the (now longer) batch so the data
            # sensed live during the extension is never lost.
            while True:
                batch = (max(0.0, batch_start - self.overlap_s), awake_end)
                batch_detections = detect(batch)
                recent = [
                    d for d in batch_detections
                    if d.span[1] >= awake_end - self.hold_s
                ]
                if recent and awake_end < trace.duration:
                    awake_end = min(awake_end + self.hold_s, trace.duration)
                else:
                    break
            if awake_end > wake_at:
                windows.append((wake_at, awake_end))
            # Overlap-region events may be reported by both adjacent
            # batches; duplicates are harmless for the event-level
            # recall/precision metrics (both match the same event), and
            # dropping them risks losing events whose context straddles
            # the boundary.
            detections.extend(batch_detections)
            batch_start = awake_end
            cursor = awake_end + self.sleep_interval_s
            if wake_at >= trace.duration:
                break
        return evaluate(
            config_name=self.name,
            app=app,
            trace=trace,
            awake_windows=windows,
            detections=detections,
            mcus=(MSP430,),
            profile=profile,
            context=context,
        )
