"""The six sensing configurations of Section 4.2.

* :class:`~repro.sim.configs.always_awake.AlwaysAwake` — phone never
  sleeps (the baseline ceiling);
* :class:`~repro.sim.configs.duty_cycling.DutyCycling` — periodic 4 s
  sensing windows separated by a sleep interval;
* :class:`~repro.sim.configs.batching.Batching` — like duty cycling,
  but the hub caches sensor data while the phone sleeps, so nothing is
  missed (at the cost of timeliness);
* :class:`~repro.sim.configs.predefined.PredefinedActivity` — a generic
  manufacturer-provided significant-motion / significant-sound trigger;
* :class:`~repro.sim.configs.sidewinder.Sidewinder` — the application's
  custom wake-up condition on the hub;
* :class:`~repro.sim.configs.oracle.Oracle` — a hypothetical ideal that
  wakes exactly for the events of interest (the savings floor).
"""

from repro.sim.configs.always_awake import AlwaysAwake
from repro.sim.configs.base import SensingConfiguration
from repro.sim.configs.batching import Batching
from repro.sim.configs.duty_cycling import DutyCycling
from repro.sim.configs.oracle import Oracle
from repro.sim.configs.predefined import PredefinedActivity
from repro.sim.configs.sidewinder import Sidewinder

__all__ = [
    "AlwaysAwake",
    "Batching",
    "DutyCycling",
    "Oracle",
    "PredefinedActivity",
    "SensingConfiguration",
    "Sidewinder",
]
