"""Simulation results: everything the paper's metrics need (Section 4.3).

"For each sensing approach and trace, the simulator calculated the
amount of sleep and awake time, the total number of wake-up events, and
the recall and precision of the application.  Using this data and the
energy model ... we estimate the average power consumption."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.apps.base import Detection
from repro.power.accounting import PowerBreakdown
from repro.power.timeline import Timeline
from repro.sim.recovery import FaultReport


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one (configuration, application, trace) simulation.

    Attributes:
        config_name: Sensing configuration (e.g. ``"sidewinder"``).
        app_name: Application simulated.
        trace_name: Trace replayed.
        timeline: The phone's state timeline.
        power: Average-power breakdown (phone + hub MCU).
        detections: The application's reported detections.
        recall: Event-level recall against ground truth.
        precision: Detection-level precision against ground truth.
        hub_wake_count: Wake events emitted by the hub condition (0 for
            configurations without a hub condition).
        mcu_names: Hub MCUs charged in the power model.
        fault_report: Fault-injection and recovery counters when the
            run executed under a :class:`~repro.hub.faults.FaultPlan`;
            ``None`` for fault-free runs.
    """

    config_name: str
    app_name: str
    trace_name: str
    timeline: Timeline
    power: PowerBreakdown
    detections: Tuple[Detection, ...]
    recall: float
    precision: float
    hub_wake_count: int = 0
    mcu_names: Tuple[str, ...] = ()
    fault_report: Optional[FaultReport] = None

    @property
    def average_power_mw(self) -> float:
        """Average total power (phone + hub), mW."""
        return self.power.total_mw

    @property
    def hub_resets(self) -> int:
        """Hub brown-outs injected during the run."""
        return self.fault_report.hub_resets if self.fault_report else 0

    @property
    def retransmissions(self) -> int:
        """Link retransmissions the reliable transport performed."""
        return self.fault_report.retransmissions if self.fault_report else 0

    @property
    def lost_wakeups(self) -> int:
        """Hub wake events that never reached the phone."""
        return self.fault_report.lost_wakeups if self.fault_report else 0

    @property
    def degraded_seconds(self) -> float:
        """Seconds spent degraded to duty-cycling after a watchdog trip."""
        return self.fault_report.degraded_seconds if self.fault_report else 0.0

    @property
    def awake_fraction(self) -> float:
        """Fraction of the trace the phone spent fully awake."""
        return self.power.awake_fraction

    @property
    def wakeup_count(self) -> int:
        """Number of phone asleep-to-awake transitions."""
        return self.power.wakeup_count

    def mean_latency_s(self, events, tolerance_s: float) -> float:
        """Mean detection-report latency against the given events.

        Report times are constrained to this run's awake windows — the
        timeliness metric behind Section 5.4's batching argument.
        """
        from repro.eval.metrics import mean_detection_latency

        return mean_detection_latency(
            events, self.detections, tolerance_s, self.timeline.awake_windows()
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.config_name:>18s} | {self.app_name:<16s} | "
            f"{self.trace_name:<28s} | {self.average_power_mw:7.1f} mW | "
            f"recall {self.recall:5.1%} | precision {self.precision:5.1%} | "
            f"wakeups {self.wakeup_count}"
        )


def savings_fraction(
    result: SimulationResult, always_awake_mw: float, oracle_mw: float
) -> float:
    """Fraction of the possible savings a configuration achieved.

    The paper's Section 5.2 metric:
    ``(AlwaysAwake - X) / (AlwaysAwake - Oracle)``.
    """
    denominator = always_awake_mw - oracle_mw
    if denominator <= 0:
        return 1.0
    return (always_awake_mw - result.average_power_mw) / denominator
