"""Shared-memory trace shipping for the persistent worker pool.

The pool initializer used to pickle every trace into every worker: *N*
workers each received — and re-materialized — a private copy of every
channel array, multiplying the resident set by the worker count and
putting megabytes of sample data through the pickle channel on every
pool (re)build.  The arrays are read-only for the pool's whole life,
so one copy is enough: :func:`export_traces` copies each channel into
a :class:`multiprocessing.shared_memory.SharedMemory` segment once and
builds a small picklable *payload* of segment names plus metadata;
:func:`attach_traces` (run inside each worker) maps those segments and
rebuilds "hollow" :class:`~repro.traces.base.Trace` objects whose data
arrays are zero-copy views over the shared pages.

The parent owns the segments: it keeps the :class:`TraceExport` alive
for the pool's lifetime and calls :meth:`TraceExport.close` after the
pool has shut down (workers detached).  Platforms or sandboxes without
usable shared memory degrade gracefully — the payload then carries the
traces themselves (``"direct"`` mode), which is exactly the old
behavior.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.traces.base import Trace

#: SharedMemory handles attached by this process (worker side).  Pinned
#: for process lifetime: the numpy views handed to simulations borrow
#: the mapped buffer, so the handles must never be garbage-collected
#: under them.
_ATTACHED: List[object] = []


@dataclass
class TraceExport:
    """A parent-side export: the worker payload plus owned segments.

    Attributes:
        payload: Picklable envelope for the pool initializer — either
            ``("shm", descriptors)`` or ``("direct", traces)``.
        segments: The shared-memory segments backing an ``"shm"``
            payload (empty in ``"direct"`` mode).  The export must stay
            referenced while any worker may map them.
    """

    payload: tuple
    segments: List[object] = field(default_factory=list)

    @property
    def mode(self) -> str:
        """``"shm"`` or ``"direct"``."""
        return self.payload[0]

    def close(self) -> None:
        """Close and unlink every owned segment (idempotent).

        Call only after the consuming pool has shut down; a worker's
        exit may have raced us to the unlink, so a missing file is
        fine.
        """
        for segment in self.segments:
            try:
                segment.close()
            except Exception:
                pass
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
            except Exception:
                pass
        self.segments = []


def export_traces(traces: Sequence[Trace]) -> TraceExport:
    """Stage traces for zero-copy shipping to pool workers.

    Each channel array is copied into one shared-memory segment; the
    returned payload carries only segment names, dtypes/shapes, and the
    trace's scalar fields — a few hundred bytes per trace instead of
    its full sample data.  Any failure to allocate shared memory falls
    back to ``"direct"`` mode (the traces ship by pickle, as before).
    """
    try:
        from multiprocessing import shared_memory
    except Exception:  # pragma: no cover - platform without shm
        return TraceExport(payload=("direct", list(traces)))
    segments: List[object] = []
    descriptors = []
    try:
        for trace in traces:
            channels: Dict[str, Tuple[str, tuple, str, float]] = {}
            for name, samples in trace.data.items():
                array = np.ascontiguousarray(samples)
                segment = shared_memory.SharedMemory(
                    create=True, size=max(array.nbytes, 1)
                )
                segments.append(segment)
                view = np.ndarray(
                    array.shape, dtype=array.dtype, buffer=segment.buf
                )
                view[...] = array
                channels[name] = (
                    segment.name,
                    array.shape,
                    array.dtype.str,
                    float(trace.rate_hz[name]),
                )
            descriptors.append(
                (
                    trace.name,
                    float(trace.duration),
                    list(trace.events),
                    dict(trace.metadata),
                    channels,
                )
            )
    except Exception:
        TraceExport(payload=("shm", []), segments=segments).close()
        return TraceExport(payload=("direct", list(traces)))
    return TraceExport(payload=("shm", descriptors), segments=segments)


def _attach_segment(name: str):
    """Map an existing segment without resource-tracker ownership."""
    from multiprocessing import shared_memory

    try:
        # track=False (3.13+): an attacher must not let the resource
        # tracker unlink a segment the parent still owns.
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


def attach_traces(payload: tuple) -> List[Trace]:
    """Rebuild the shipped traces inside a worker process.

    ``"direct"`` payloads already hold the traces.  ``"shm"`` payloads
    are mapped: each channel array becomes a read-only numpy view over
    the parent's segment — no copy, no pickle — and the trace object is
    rebuilt hollow (skipping ``__post_init__`` validation, which the
    parent already ran on the same data).
    """
    mode, body = payload
    if mode == "direct":
        return list(body)
    traces: List[Trace] = []
    for name, duration, events, metadata, channels in body:
        data: Dict[str, np.ndarray] = {}
        rate_hz: Dict[str, float] = {}
        for channel, (segment_name, shape, dtype, rate) in channels.items():
            segment = _attach_segment(segment_name)
            _ATTACHED.append(segment)
            array = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
            array.flags.writeable = False
            data[channel] = array
            rate_hz[channel] = rate
        trace = object.__new__(Trace)
        trace.name = name
        trace.data = data
        trace.rate_hz = rate_hz
        trace.duration = duration
        trace.events = events
        trace.metadata = metadata
        traces.append(trace)
    return traces
