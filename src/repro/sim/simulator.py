"""Shared simulation machinery.

A sensing configuration's job is to decide *when the phone is awake* and
*what data the application sees*; everything else — running hub
conditions, building timelines, scoring detections, accounting power —
is shared and lives here.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.api.compile import compile_pipeline
from repro.api.pipeline import ProcessingPipeline
from repro.apps.base import Detection, SensingApplication
from repro.errors import HubExecutionError
from repro.eval.metrics import match_events
from repro.hub.delivery import DeliveryMode, DeliverySpec, payload_bytes
from repro.hub.faults import FaultPlan
from repro.hub.link import LinkModel, UART_DEBUG
from repro.hub.mcu import MCUModel
from repro.hub.reliability import ReliabilityPolicy
from repro.hub.runtime import HubRuntime, WakeEvent, split_into_rounds
from repro.il.graph import DataflowGraph
from repro.il.validate import validate_program
from repro.power.accounting import account
from repro.power.phone import NEXUS4, PhonePowerProfile
from repro.power.timeline import build_timeline, merge_windows
from repro.sim.engine import RunContext
from repro.sim.recovery import FaultReport, FaultyRun, run_condition_under_faults
from repro.sim.results import SimulationResult
from repro.traces.base import Trace

#: Default seconds the phone stays awake after a wake-up to collect and
#: process data (the paper's duty-cycling experiments use 4 s windows).
DEFAULT_HOLD_S = 4.0

#: Hold for hub-triggered wake-ups (Sidewinder, Predefined Activity):
#: the phone wakes to process an already-buffered event and can return
#: to sleep as soon as the hub condition stops firing, unlike duty
#: cycling which must sense blindly for a full window.
TRIGGERED_HOLD_S = 2.0

#: Seconds of raw pre-wake sensor data the hub buffers and hands to the
#: application (Section 3.8: "Our current implementation passes a buffer
#: of raw sensor data to the application").
DEFAULT_RAW_BUFFER_S = 4.0

#: Chunk length used when feeding traces through hub runtimes.
FEED_CHUNK_S = 4.0


def compile_app_condition(
    pipeline: ProcessingPipeline, context: Optional[RunContext] = None
) -> DataflowGraph:
    """Compile and validate a wake-up condition pipeline.

    With a :class:`~repro.sim.engine.RunContext`, the validated graph is
    memoized by the IL program's content fingerprint.
    """
    if context is not None:
        return context.compile(pipeline)
    return validate_program(compile_pipeline(pipeline))


def run_wakeup_condition(
    graph: DataflowGraph,
    trace: Trace,
    chunk_seconds: float = FEED_CHUNK_S,
    context: Optional[RunContext] = None,
) -> List[WakeEvent]:
    """Execute a hub condition over a whole trace, collecting wake events.

    With a :class:`~repro.sim.engine.RunContext`, identical (condition,
    trace, chunk) runs are interpreted once and served from cache.
    """
    if context is not None:
        return list(context.wake_events(graph, trace, chunk_seconds))
    # The graph may be a context-cached instance whose algorithm objects
    # carry state from an earlier run; always start cold.
    graph.reset()
    runtime = HubRuntime(graph)
    channels = {
        name: triple
        for name, triple in trace.channel_arrays().items()
        if name in graph.channels
    }
    missing = set(graph.channels) - set(channels)
    if missing:
        raise HubExecutionError(
            f"trace {trace.name!r} lacks channels {sorted(missing)} needed "
            "by the wake-up condition"
        )
    return runtime.run(split_into_rounds(channels, chunk_seconds))


def faulty_condition_windows(
    graph: DataflowGraph,
    trace: Trace,
    plan: FaultPlan,
    policy: Optional[ReliabilityPolicy] = None,
    link: LinkModel = UART_DEBUG,
    hold_s: float = TRIGGERED_HOLD_S,
    raw_buffer_s: float = DEFAULT_RAW_BUFFER_S,
    profile: PhonePowerProfile = NEXUS4,
    context: Optional[RunContext] = None,
) -> Tuple[List[Tuple[float, float]], List[Tuple[float, float]], FaultyRun]:
    """Awake and data-visibility windows under injected system faults.

    Runs the condition through :func:`repro.sim.recovery.run_condition_under_faults`
    and turns the phone's experience into simulator windows:

    * awake windows come from the wake-ups that actually *arrived*
      (retry/interrupt delays shift them), merged with any degraded
      duty-cycling windows the watchdog fallback ran;
    * detect windows extend each wake-up whose delivery payload
      survived back to the start of the hub's raw buffer — a wake-up
      whose payload was lost wakes the phone but carries no pre-wake
      data.

    Returns:
        ``(awake_windows, detect_windows, faulty_run)``.
    """
    payload = payload_bytes(
        DeliverySpec(DeliveryMode.RAW, buffer_s=raw_buffer_s), graph
    )
    run = run_condition_under_faults(
        graph,
        trace,
        plan,
        policy,
        link=link,
        wake_payload_bytes=payload,
        chunk_seconds=FEED_CHUNK_S,
        context=context,
    )
    wake_windows = windows_from_wake_times(
        [d.arrival_time for d in run.deliveries], trace.duration, hold_s, profile
    )
    awake = merge_windows(
        list(wake_windows) + list(run.degraded_windows),
        min_gap=2.0 * profile.transition_s,
    )
    buffered = [
        (
            max(0.0, d.event_time - raw_buffer_s),
            min(d.arrival_time, trace.duration),
        )
        for d in run.deliveries
        if d.payload_delivered
    ]
    detect = merge_windows(list(awake) + buffered, min_gap=0.0)
    return awake, detect, run


def windows_from_wake_times(
    wake_times: Sequence[float],
    duration: float,
    hold_s: float = DEFAULT_HOLD_S,
    profile: PhonePowerProfile = NEXUS4,
) -> List[Tuple[float, float]]:
    """Awake windows implied by hub wake events.

    Each wake event keeps the phone awake for ``hold_s``; events arriving
    while already awake extend the window (windows merge when the gap is
    too short to complete a sleep/wake round trip).
    """
    windows = [
        (t, min(t + hold_s, duration)) for t in wake_times if t < duration
    ]
    return merge_windows(windows, min_gap=2.0 * profile.transition_s)


def extend_for_buffer(
    windows: Sequence[Tuple[float, float]],
    buffer_s: float = DEFAULT_RAW_BUFFER_S,
) -> List[Tuple[float, float]]:
    """Data-visibility windows: awake windows plus the hub's raw buffer.

    The buffer only extends what data the application can *see*; it does
    not add awake time (the data was captured while the phone slept).
    """
    return merge_windows(
        [(max(0.0, start - buffer_s), end) for start, end in windows], min_gap=0.0
    )


def evaluate(
    config_name: str,
    app: SensingApplication,
    trace: Trace,
    awake_windows: Sequence[Tuple[float, float]],
    detect_windows: Optional[Sequence[Tuple[float, float]]] = None,
    detections: Optional[Sequence[Detection]] = None,
    mcus: Sequence[MCUModel] = (),
    profile: PhonePowerProfile = NEXUS4,
    hub_wake_count: int = 0,
    fault_report: Optional[FaultReport] = None,
    context: Optional[RunContext] = None,
) -> SimulationResult:
    """Assemble a :class:`SimulationResult`.

    Args:
        config_name: Name of the sensing configuration.
        app: The application under simulation.
        trace: The trace replayed.
        awake_windows: Spans the phone must be fully awake.
        detect_windows: Spans of data the precise detector may read;
            defaults to the awake windows.
        detections: Pre-computed detections (used by configurations that
            interleave detection with window construction, e.g. duty
            cycling); when omitted, the detector runs over
            ``detect_windows``.
        mcus: Hub MCUs charged in the power model.
        profile: Phone power profile.
        hub_wake_count: Wake events the hub condition produced.
        fault_report: Fault/recovery counters when the run was executed
            under a fault plan; its reliability energy is charged in
            the power breakdown.
        context: Optional :class:`~repro.sim.engine.RunContext`;
            detector runs and ground-truth lookups are served from its
            cache.
    """
    timeline = build_timeline(trace.duration, awake_windows, profile)
    if detections is None:
        windows = detect_windows if detect_windows is not None else timeline.awake_windows()
        if context is not None:
            detections = context.detections(app, trace, windows)
        else:
            detections = app.detect(trace, windows)
    if context is not None:
        events = list(context.events_of_interest(app, trace))
    else:
        events = app.events_of_interest(trace)
    match = match_events(events, detections, app.match_tolerance_s)
    breakdown = account(
        timeline,
        profile,
        mcus=tuple(mcus),
        reliability_mj=fault_report.reliability_mj if fault_report else 0.0,
    )
    return SimulationResult(
        config_name=config_name,
        app_name=app.name,
        trace_name=trace.name,
        timeline=timeline,
        power=breakdown,
        detections=tuple(detections),
        recall=match.recall,
        precision=match.precision,
        hub_wake_count=hub_wake_count,
        mcu_names=tuple(m.name for m in mcus),
        fault_report=fault_report,
    )
