"""Fault-aware condition execution: watchdog recovery, graceful degradation.

This module answers the question the paper's Section 3.8 leaves open:
what must happen when the hub itself fails?  It executes a wake-up
condition over a trace under a :class:`~repro.hub.faults.FaultPlan`,
optionally protected by a :class:`~repro.hub.reliability.ReliabilityPolicy`,
and reports what the *phone* experienced: which wake-ups actually
arrived (and when), which payloads survived, and which stretches of the
trace the phone covered by falling back to duty-cycling.

The recovery state machine (reliable mode):

1. **RESIDENT** — the condition runs on the hub; the hub heartbeats
   every ``heartbeat_period_s``, each beat carrying a condition
   generation tag.
2. **A reset** kills all interpreter state and silences the hub until
   the firmware reboots (``hub_reboot_s``).  Wake-ups stop; nobody
   knows yet.
3. **Detection** — the watchdog trips on the *first received* heartbeat
   whose generation tag shows the condition is gone (fast path, the
   rebooted hub confesses), or after ``heartbeat_tolerance``
   consecutive missing beats (slow path: hub still dark, or a pure
   link blackout — which can also trip spuriously, costing one
   harmless re-push).
4. **DEGRADED** — from the trip until recovery the phone duty-cycles
   (``degraded_sense_s`` on, ``degraded_sleep_s`` off), trading power
   for partial recall instead of silently flatlining, while it
   re-pushes the condition over the reliable link (ACK/retry).
5. **RECOVERED** — the push is acknowledged; the condition restarts
   from cold state (warm-up is implicit: filters and moving averages
   refill from live data) and the phone returns to hub-triggered
   sleep.

Without a policy there is no watchdog: the first reset kills wake-ups
for the remainder of the trace — exactly the silent flatline the
reliable protocol exists to prevent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import FaultInjectionError, HubExecutionError
from repro.hub.faults import FaultInjector, FaultPlan
from repro.hub.link import LinkModel, UART_DEBUG
from repro.hub.reliability import (
    CONDITION_PUSH_BYTES,
    HEARTBEAT_BYTES,
    WAKE_MESSAGE_BYTES,
    ReliabilityPolicy,
    ReliableLink,
)
from repro.hub.runtime import HubRuntime, WakeEvent
from repro.il.graph import DataflowGraph
from repro.sensors.samples import Chunk
from repro.traces.base import Trace

#: Re-push attempts (each already carrying the link's own retries)
#: before the simulator declares the hub unrecoverable.  Unreachable in
#: practice for any drop probability < 1.
_MAX_PUSH_ROUNDS = 50


@dataclass(frozen=True)
class FaultReport:
    """Counters describing what fault injection and recovery did.

    Attributes:
        hub_resets: Hub brown-outs that occurred within the trace.
        retransmissions: Link-level retransmissions across wake
            messages, delivery payloads and condition re-pushes.
        lost_wakeups: Hub wake events that never reached the phone.
        lost_chunks: Sensor-data rounds the hub never received intact.
        heartbeats_sent: Heartbeat frames the hub transmitted.
        heartbeats_missed: Heartbeat slots the phone heard nothing in
            (lost frames and dead-hub slots both count).
        watchdog_trips: Times the phone declared the hub dead.
        repushes: Conditions successfully re-pushed after a trip.
        degraded_seconds: Wall-clock seconds spent degraded to
            duty-cycling.
        reliability_mj: Energy (millijoules) the reliable transport
            spent on CRC framing, retransmissions, ACKs, heartbeats and
            re-pushes; 0 for naive delivery.
    """

    hub_resets: int = 0
    retransmissions: int = 0
    lost_wakeups: int = 0
    lost_chunks: int = 0
    heartbeats_sent: int = 0
    heartbeats_missed: int = 0
    watchdog_trips: int = 0
    repushes: int = 0
    degraded_seconds: float = 0.0
    reliability_mj: float = 0.0


@dataclass(frozen=True)
class WakeDelivery:
    """One wake event as the phone experienced it.

    Attributes:
        event_time: Trace time the hub condition fired.
        arrival_time: Time the wake actually reached the phone (retry
            and interrupt delays included).
        attempts: Wake-message transmissions it took.
        payload_delivered: Whether the pre-wake buffer payload made it
            across; when False the phone woke but has no pre-wake data.
    """

    event_time: float
    arrival_time: float
    attempts: int
    payload_delivered: bool


@dataclass(frozen=True)
class FaultyRun:
    """Outcome of executing one condition under a fault plan.

    Attributes:
        deliveries: Wake-ups that reached the phone, in time order.
        degraded_windows: Duty-cycle *sensing* windows the phone ran
            while degraded (empty without a reliability policy).
        resident_spans: Trace spans during which the condition was
            alive on the hub.
        hub_event_count: Wake events the condition produced (before
            any delivery loss).
        report: Fault/recovery counters.
    """

    deliveries: Tuple[WakeDelivery, ...]
    degraded_windows: Tuple[Tuple[float, float], ...]
    resident_spans: Tuple[Tuple[float, float], ...]
    hub_event_count: int
    report: FaultReport


@dataclass
class _Availability:
    """Internal: when the condition was resident, and what that cost."""

    resident: List[Tuple[float, float]] = field(default_factory=list)
    degraded: List[Tuple[float, float]] = field(default_factory=list)
    heartbeats_sent: int = 0
    heartbeats_missed: int = 0
    watchdog_trips: int = 0
    repushes: int = 0
    retransmissions: int = 0
    link_busy_s: float = 0.0


def _clip_spans(
    spans: List[Tuple[float, float]], duration: float
) -> List[Tuple[float, float]]:
    clipped = [
        (max(0.0, a), min(duration, b)) for a, b in spans
    ]
    return [(a, b) for a, b in clipped if b > a]


def _naive_availability(plan: FaultPlan, duration: float) -> _Availability:
    """No watchdog: the first reset kills the condition for good."""
    availability = _Availability()
    resets = plan.resets_before(duration)
    end = resets[0] if resets else duration
    availability.resident = _clip_spans([(0.0, end)], duration)
    return availability


def _watchdog_availability(
    plan: FaultPlan,
    policy: ReliabilityPolicy,
    duration: float,
    injector: FaultInjector,
    rlink: ReliableLink,
) -> _Availability:
    """Heartbeat watchdog: detect dead hubs, re-push, degrade meanwhile."""
    availability = _Availability()
    resets = plan.resets_before(duration)
    down_spans = [(t, t + plan.hub_reboot_s) for t in resets]

    def hub_alive(t: float) -> bool:
        return not any(a <= t < b for a, b in down_spans)

    def next_uptime(t: float) -> float:
        for a, b in down_spans:
            if a <= t < b:
                return b
        return t

    period = policy.heartbeat_period_s
    heartbeat_s = rlink.frame_seconds(HEARTBEAT_BYTES)
    resident_start = 0.0
    condition_resident = True
    consecutive_missed = 0
    reset_index = 0
    t = period
    while t < duration:
        # Apply any brown-out that happened before this heartbeat slot.
        while reset_index < len(resets) and resets[reset_index] <= t:
            if condition_resident:
                availability.resident.append(
                    (resident_start, resets[reset_index])
                )
                condition_resident = False
            reset_index += 1

        received = False
        stale = False
        if hub_alive(t):
            availability.heartbeats_sent += 1
            availability.link_busy_s += heartbeat_s
            if not injector.heartbeat_dropped():
                received = True
                stale = not condition_resident
        if received and not stale:
            consecutive_missed = 0
        elif not received:
            consecutive_missed += 1
            availability.heartbeats_missed += 1

        tripped = stale or consecutive_missed >= policy.heartbeat_tolerance
        if not tripped:
            t += period
            continue

        availability.watchdog_trips += 1
        if condition_resident:
            # Spurious trip: a run of lost heartbeats from a healthy
            # hub.  The re-push is harmless but costs energy and
            # restarts the condition's state.
            availability.resident.append((resident_start, t))
            condition_resident = False
        degrade_start = t
        push_at = t
        finish = duration
        for _ in range(_MAX_PUSH_ROUNDS):
            push_at = next_uptime(push_at)
            outcome = rlink.send(
                float(CONDITION_PUSH_BYTES), injector.payload_dropped
            )
            availability.link_busy_s += outcome.link_busy_s
            availability.retransmissions += outcome.retransmissions
            finish = push_at + outcome.completion_s
            if outcome.delivered:
                availability.repushes += 1
                condition_resident = True
                break
            push_at = finish
        availability.degraded.append((degrade_start, min(finish, duration)))
        if not condition_resident:
            break  # pragma: no cover - needs drop probability of ~1
        resident_start = finish
        consecutive_missed = 0
        # Resume at the first heartbeat slot after recovery.
        t = period * (int(finish / period) + 1)

    if condition_resident:
        availability.resident.append((resident_start, duration))
    availability.resident = _clip_spans(availability.resident, duration)
    availability.degraded = _clip_spans(availability.degraded, duration)
    return availability


def _run_condition(
    graph: DataflowGraph,
    trace: Trace,
    resident: List[Tuple[float, float]],
    injector: FaultInjector,
    chunk_seconds: float,
    context=None,
) -> Tuple[List[WakeEvent], int]:
    """Interpret the condition over its resident spans only.

    Each span starts from cold interpreter state (a re-pushed condition
    allocates fresh :class:`~repro.hub.state.AlgorithmState`), which is
    the warm-up cost of recovery.  Sensor rounds lost on the way into
    the hub are skipped entirely.
    """
    arrays = (
        context.channel_arrays(trace) if context is not None
        else trace.channel_arrays()
    )
    channels = {
        name: triple
        for name, triple in arrays.items()
        if name in graph.channels
    }
    missing = set(graph.channels) - set(channels)
    if missing:
        raise HubExecutionError(
            f"trace {trace.name!r} lacks channels {sorted(missing)} needed "
            "by the wake-up condition"
        )
    runtime = HubRuntime(graph)
    events: List[WakeEvent] = []
    lost_chunks = 0
    for span_start, span_end in resident:
        runtime.reset()
        t0 = span_start
        while t0 < span_end:
            t1 = min(t0 + chunk_seconds, span_end)
            round_chunks = {}
            empty = True
            for name, (times, values, rate) in channels.items():
                i0, i1 = np.searchsorted(times, (t0, t1), side="left")
                if i1 > i0:
                    empty = False
                round_chunks[name] = Chunk.scalars(
                    times[i0:i1], values[i0:i1], rate
                )
            if not empty:
                if injector.chunk_dropped():
                    lost_chunks += 1
                else:
                    events.extend(runtime.feed(round_chunks))
            t0 = t1
    return events, lost_chunks


def _deliver(
    events: List[WakeEvent],
    injector: FaultInjector,
    policy: Optional[ReliabilityPolicy],
    rlink: Optional[ReliableLink],
    wake_payload_bytes: float,
) -> Tuple[List[WakeDelivery], int, int, float]:
    """Carry each wake event (and its payload) across the link.

    Returns ``(deliveries, lost_wakeups, retransmissions, link_busy_s)``.
    """
    deliveries: List[WakeDelivery] = []
    lost = 0
    retransmissions = 0
    link_busy = 0.0
    for event in events:
        delay = injector.wake_delay()
        if policy is None or rlink is None:
            if injector.wake_dropped():
                lost += 1
                continue
            payload_ok = True
            if wake_payload_bytes > 0:
                payload_ok = not injector.payload_dropped()
            deliveries.append(
                WakeDelivery(event.time, event.time + delay, 1, payload_ok)
            )
            continue
        outcome = rlink.send(float(WAKE_MESSAGE_BYTES), injector.wake_dropped)
        link_busy += outcome.link_busy_s
        retransmissions += outcome.retransmissions
        if not outcome.delivered:
            lost += 1
            continue
        arrival = event.time + delay + outcome.completion_s
        payload_ok = True
        if wake_payload_bytes > 0:
            payload_outcome = rlink.send(
                wake_payload_bytes, injector.payload_dropped
            )
            link_busy += payload_outcome.link_busy_s
            retransmissions += payload_outcome.retransmissions
            payload_ok = payload_outcome.delivered
            if payload_outcome.delivered:
                arrival += payload_outcome.completion_s
        deliveries.append(
            WakeDelivery(event.time, arrival, outcome.attempts, payload_ok)
        )
    return deliveries, lost, retransmissions, link_busy


def degraded_sense_windows(
    intervals: Tuple[Tuple[float, float], ...],
    policy: ReliabilityPolicy,
) -> List[Tuple[float, float]]:
    """Duty-cycle sensing windows covering the degraded intervals."""
    windows: List[Tuple[float, float]] = []
    for start, end in intervals:
        t = start
        while t < end:
            w_end = min(t + policy.degraded_sense_s, end)
            if w_end > t:
                windows.append((t, w_end))
            t += policy.degraded_sense_s + policy.degraded_sleep_s
    return windows


def run_condition_under_faults(
    graph: DataflowGraph,
    trace: Trace,
    plan: FaultPlan,
    policy: Optional[ReliabilityPolicy] = None,
    link: LinkModel = UART_DEBUG,
    wake_payload_bytes: float = 0.0,
    chunk_seconds: float = 4.0,
    context=None,
) -> FaultyRun:
    """Execute a wake-up condition under injected system faults.

    Args:
        graph: Validated wake-up condition.
        trace: The trace to replay.
        plan: The fault schedule (see :class:`~repro.hub.faults.FaultPlan`).
        policy: Reliability policy; ``None`` simulates the paper's
            naive fire-and-forget delivery.
        link: The hub-to-phone bus.
        wake_payload_bytes: Delivery payload accompanying each wake-up
            (0 disables payload modeling).
        chunk_seconds: Sensor-feed round length.
        context: Optional :class:`~repro.sim.engine.RunContext`; only
            the per-trace channel arrays are drawn from it — a faulty
            run itself is never cached (the injector is stochastic).

    Returns:
        A :class:`FaultyRun`; deterministic for a given plan.
    """
    if chunk_seconds <= 0:
        raise FaultInjectionError(
            f"chunk_seconds must be positive, got {chunk_seconds}"
        )
    injector = FaultInjector(plan)
    rlink = ReliableLink(link, policy) if policy is not None else None
    if policy is None:
        availability = _naive_availability(plan, trace.duration)
    else:
        availability = _watchdog_availability(
            plan, policy, trace.duration, injector, rlink
        )
    events, lost_chunks = _run_condition(
        graph, trace, availability.resident, injector, chunk_seconds,
        context=context,
    )
    deliveries, lost_wakeups, wake_retrans, wake_busy = _deliver(
        events, injector, policy, rlink, wake_payload_bytes
    )
    reliability_mj = 0.0
    if rlink is not None:
        reliability_mj = rlink.energy_mj(availability.link_busy_s + wake_busy)
    degraded = tuple(availability.degraded)
    report = FaultReport(
        hub_resets=len(plan.resets_before(trace.duration)),
        retransmissions=availability.retransmissions + wake_retrans,
        lost_wakeups=lost_wakeups,
        lost_chunks=lost_chunks,
        heartbeats_sent=availability.heartbeats_sent,
        heartbeats_missed=availability.heartbeats_missed,
        watchdog_trips=availability.watchdog_trips,
        repushes=availability.repushes,
        degraded_seconds=sum(b - a for a, b in degraded),
        reliability_mj=reliability_mj,
    )
    sense_windows = (
        tuple(degraded_sense_windows(degraded, policy))
        if policy is not None
        else ()
    )
    return FaultyRun(
        deliveries=tuple(deliveries),
        degraded_windows=sense_windows,
        resident_spans=tuple(availability.resident),
        hub_event_count=len(events),
        report=report,
    )
