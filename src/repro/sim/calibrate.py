"""Calibration sweeps (Section 5.3).

"To make the comparison to Predefined Activity as fair as possible, we
explored the parameter space to determine the best thresholds for
significant acceleration and sound intensity.  We chose values that
minimize power consumption, while maintaining 100% detection recall.
Thus the parameters used in this scenario are over-fitted to our test
data and represent a best case scenario that skews the results in favor
of Predefined Activity."

:func:`calibrate_predefined_activity` reproduces that sweep: it walks a
threshold grid from most to least sensitive and keeps the highest
threshold whose recall stays perfect for *every* (application, trace)
pair — which is exactly the over-fitting the paper acknowledges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.apps.base import SensingApplication
from repro.errors import SimulationError
from repro.sim.configs.predefined import PredefinedActivity
from repro.sim.results import SimulationResult
from repro.traces.base import Trace


@dataclass(frozen=True)
class CalibrationPoint:
    """Sweep outcome at one threshold value."""

    threshold: float
    min_recall: float
    mean_power_mw: float


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a Predefined Activity threshold sweep.

    Attributes:
        best_threshold: Highest threshold retaining 100 % recall.
        points: Full sweep curve, most sensitive first.
    """

    best_threshold: float
    points: Tuple[CalibrationPoint, ...]


def _run_grid(
    sensor: str,
    thresholds: Sequence[float],
    pairs: Sequence[Tuple[SensingApplication, Trace]],
) -> List[CalibrationPoint]:
    points: List[CalibrationPoint] = []
    for threshold in thresholds:
        if sensor == "motion":
            config = PredefinedActivity(motion_threshold=threshold)
        else:
            config = PredefinedActivity(sound_threshold=threshold)
        results: List[SimulationResult] = [
            config.run(app, trace) for app, trace in pairs
        ]
        points.append(
            CalibrationPoint(
                threshold=threshold,
                min_recall=min(r.recall for r in results),
                mean_power_mw=sum(r.average_power_mw for r in results)
                / len(results),
            )
        )
    return points


def calibrate_predefined_activity(
    sensor: str,
    thresholds: Sequence[float],
    pairs: Sequence[Tuple[SensingApplication, Trace]],
) -> CalibrationResult:
    """Sweep PA thresholds; keep the least sensitive with perfect recall.

    Args:
        sensor: ``"motion"`` or ``"sound"``.
        thresholds: Candidate thresholds, any order.
        pairs: (application, trace) pairs that must all retain 100 %
            recall.  Pass every application sharing the trigger — the
            manufacturer ships *one* significant-motion detector.

    Raises:
        SimulationError: when no candidate threshold achieves 100 %
            recall everywhere (the grid's most sensitive end is not
            sensitive enough).
    """
    if sensor not in ("motion", "sound"):
        raise SimulationError(f"sensor must be 'motion' or 'sound', got {sensor!r}")
    if not pairs:
        raise SimulationError("calibration needs at least one (app, trace) pair")
    ordered = sorted(thresholds)
    points = _run_grid(sensor, ordered, pairs)
    perfect = [p for p in points if p.min_recall >= 1.0]
    if not perfect:
        raise SimulationError(
            f"no {sensor} threshold in {ordered} achieves 100% recall "
            f"(best min recall: {max(p.min_recall for p in points):.1%})"
        )
    best = max(perfect, key=lambda p: p.threshold)
    return CalibrationResult(best_threshold=best.threshold, points=tuple(points))


def sweep_recall_power(
    sensor: str,
    thresholds: Sequence[float],
    pairs: Sequence[Tuple[SensingApplication, Trace]],
) -> Dict[float, CalibrationPoint]:
    """Raw sweep curve keyed by threshold (for the ablation benches)."""
    ordered = sorted(thresholds)
    return {p.threshold: p for p in _run_grid(sensor, ordered, pairs)}
