"""The simulation engine: shared run state and the experiment executor.

The paper's whole evaluation is one (configuration × application ×
trace) sweep, and large parts of every cell are identical: compiling an
application's wake-up pipeline, pulling a trace's channel arrays, and —
most expensively — interpreting a wake-up condition over a trace on the
hub.  Different sensing configurations repeat that shared work cell by
cell.  This module centralizes it:

* :class:`RunContext` memoizes compiled/validated condition graphs
  (keyed by a content fingerprint of the IL program), per-trace channel
  arrays, hub wake-event runs keyed by ``(graph fingerprint, trace,
  chunk_seconds)``, and precise-detector invocations — so Sidewinder,
  Predefined Activity, concurrent, adaptive, and fault-recovery runs
  stop re-interpreting identical (condition, trace) pairs.

* :func:`plan_matrix` builds an explicit :class:`RunPlan` of
  (config, app, trace) cells, recording the (app, trace) pairs a sweep
  must skip instead of silently dropping them.

* :func:`execute_plan` executes a plan serially through one shared
  context, or across a process pool (``jobs=N``) with cells grouped by
  trace so each worker still deduplicates its own hub work.  Result
  order is deterministic regardless of completion order.

A context is **not** thread-safe: cached graphs hold stateful algorithm
instances and are reset before each reuse.  Process-based parallelism
sidesteps this — each worker owns a private context.
"""

from __future__ import annotations

import atexit
import hashlib
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.api.compile import compile_pipeline
from repro.api.pipeline import ProcessingPipeline
from repro.errors import HubExecutionError
from repro.hub.compile import (
    BatchedPlan,
    CompiledPlan,
    batch_eligibility,
    compile_batched,
    compile_eligibility,
    compile_graph,
    shape_signature,
    structural_key,
)
from repro.hub.costmodel import CostModel
from repro.hub.runtime import (
    HubRuntime,
    WakeEvent,
    fusion_eligibility,
    split_into_rounds,
)
from repro.il.ast import ILProgram
from repro.il.graph import DataflowGraph
from repro.il.text import format_program
from repro.il.validate import validate_program
from repro.power.phone import NEXUS4, PhonePowerProfile
from repro.traces.base import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.apps.base import Detection, SensingApplication
    from repro.sim.configs.base import SensingConfiguration
    from repro.sim.results import SimulationResult
    from repro.traces.base import GroundTruthEvent


def program_fingerprint(program: ILProgram) -> str:
    """Content fingerprint of an IL program.

    Two programs with the same statements (opcodes, parameters, wiring,
    ids) and the same output reference fingerprint identically; any
    change — a retuned threshold, a reordered statement — changes it.
    The textual wire form (what the sensor manager would actually push
    to the hub) is the canonical content.
    """
    text = format_program(program)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters for one :class:`RunContext`.

    Attributes:
        compile_hits / compile_misses: Validated-graph lookups.
        plan_hits / plan_misses: Compiled whole-trace plan lookups
            (keyed by IL fingerprint; a hit may return ``None`` for a
            condition known to be compile-ineligible).
        hub_hits / hub_misses: Hub wake-event run lookups.
        trace_hits / trace_misses: Per-trace channel-array lookups.
        detect_hits / detect_misses: Precise-detector invocations.
        batch_rounds / batched_cells: Tensor-major hub dispatches — how
            many batched executions ran and how many per-trace runs
            they covered (each covered run also counts as a
            ``hub_miss``; the batch only changes how it was computed).
        shape_rounds / shape_cells: Shape-keyed heterogeneous
            dispatches — batched executions that mixed *different*
            fingerprints sharing one graph shape, and the rows they
            covered (counted separately from the exact-fingerprint
            ``batch_rounds``).
        batch_padded_cells / batch_valid_cells: Channel-tensor cells
            allocated vs actually valid across every stacked dispatch
            (homogeneous and shape-keyed); their ratio is the padding
            waste the splitting guard keeps bounded.
    """

    compile_hits: int = 0
    compile_misses: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    hub_hits: int = 0
    hub_misses: int = 0
    trace_hits: int = 0
    trace_misses: int = 0
    detect_hits: int = 0
    detect_misses: int = 0
    batch_rounds: int = 0
    batched_cells: int = 0
    shape_rounds: int = 0
    shape_cells: int = 0
    batch_padded_cells: int = 0
    batch_valid_cells: int = 0

    @property
    def total_hits(self) -> int:
        """All cache hits across categories."""
        return (
            self.compile_hits + self.plan_hits + self.hub_hits
            + self.trace_hits + self.detect_hits
        )

    @property
    def batch_padding_ratio(self) -> float:
        """Allocated over valid stacked cells (1.0 means zero waste)."""
        if self.batch_valid_cells <= 0:
            return 1.0
        return self.batch_padded_cells / self.batch_valid_cells

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dict (for logs and benchmark artifacts)."""
        return {
            "compile_hits": self.compile_hits,
            "compile_misses": self.compile_misses,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "hub_hits": self.hub_hits,
            "hub_misses": self.hub_misses,
            "trace_hits": self.trace_hits,
            "trace_misses": self.trace_misses,
            "detect_hits": self.detect_hits,
            "detect_misses": self.detect_misses,
            "batch_rounds": self.batch_rounds,
            "batched_cells": self.batched_cells,
            "shape_rounds": self.shape_rounds,
            "shape_cells": self.shape_cells,
            "batch_padded_cells": self.batch_padded_cells,
            "batch_valid_cells": self.batch_valid_cells,
        }


class RunContext:
    """Memoized shared state for a batch of simulation runs.

    Args:
        cache: When False every method computes from scratch — the
            ``--no-cache`` escape hatch; results are identical either
            way because everything cached is a pure function of its
            key.
        fuse: When True (default) hub interpretation uses the fused
            fast path for fusion-eligible graphs
            (:func:`repro.hub.runtime.fusion_eligibility`), falling
            back to round-by-round otherwise.  The ``--no-fuse``
            escape hatch sets this False; results are bit-identical
            either way.
        compiled: When True (default) the context prefers the compiled
            whole-trace array program
            (:mod:`repro.hub.compile`) over interpretation for
            compile-eligible graphs.  Tier order is compiled > fused >
            round-by-round; every tier produces bit-identical wake
            events, the interpreter being the semantics oracle.  The
            ``--no-compile`` escape hatch sets this False.  Fault
            injection never sees compiled plans: faulty runs replay
            the condition through the round-level simulator path, not
            through this context's fault-free interpretation.
        batch: When True (default) :meth:`wake_events_batch` may stack
            same-condition work from many traces into one tensor-major
            execution (:class:`repro.hub.compile.BatchedPlan`).  The
            ``--no-batch`` escape hatch sets this False; wake events
            are bit-identical either way — batching only changes how
            many numpy dispatches compute them.
        shape_batch: When True (default) :meth:`wake_events_batch` may
            additionally merge *different* fingerprints that share one
            graph shape (:func:`repro.hub.compile.shape_signature`)
            into a single heterogeneous dispatch, with per-row
            parameters lifted into tensors
            (:meth:`repro.hub.compile.BatchedPlan.execute_shape_batch`).
            The ``--no-shape-batch`` escape hatch sets this False;
            wake events are bit-identical either way.  Implies nothing
            when ``batch`` is off — shape batching rides on the
            batched path.
        cost_model: The measured tier selector
            (:class:`repro.hub.costmodel.CostModel`) consulted on every
            hub interpretation.  Tiers are bit-identical, so the model
            only decides *which* one runs; every run it requests is
            timed and fed back as a free sample.  ``None`` builds a
            private empty model; pass a shared or pre-calibrated one to
            pin selections across contexts.

    Cache keys and invalidation rules:

    * **Validated graphs** are keyed by the IL program's content
      fingerprint (:func:`program_fingerprint`).  A cached graph's
      algorithm instances are stateful, so the graph is reset to cold
      state before every reuse; retuning a parameter produces a new
      fingerprint and therefore a fresh entry.
    * **Compiled plans** are keyed by the same fingerprint, alongside
      the graph cache.  A fingerprint maps to ``None`` when its
      condition is compile-ineligible, so the (cheap, but not free)
      eligibility walk also runs once per condition.  Plans are
      stateless, so no reset is needed between reuses.
    * **Channel arrays** are keyed by trace object identity (the
      context pins the object, so the id cannot be recycled).  Traces
      are treated as immutable once handed to a context.
    * **Hub runs** are keyed by ``(graph fingerprint, trace,
      chunk_seconds)`` — the complete determinants of a fault-free
      interpretation.  Faulty runs are never cached (the injector
      draws from a stochastic plan).
    * **Detector runs** are keyed by ``(application content key,
      trace, merged visible spans)``; ground-truth lookups by
      ``(application content key, trace)``.  The content key covers
      the app's class and constructor state, so two equally
      parameterized instances — e.g. an app re-pickled into a pool
      worker — share entries while differently tuned copies stay
      distinct.  Windows are canonicalized with
      :func:`repro.apps.detectors.merge_spans` before keying because
      every detector reads its input through the same merge (a
      detector is a pure function of the merged visible spans), so
      configs that cover the same signal with differently split
      window lists share one entry.
    """

    def __init__(
        self,
        cache: bool = True,
        fuse: bool = True,
        compiled: bool = True,
        batch: bool = True,
        shape_batch: bool = True,
        cost_model: Optional[CostModel] = None,
        pool: Optional["EnginePool"] = None,
    ):
        self.cache = cache
        self.fuse = fuse
        self.compiled = compiled
        self.batch = batch
        self.shape_batch = shape_batch
        self.cost_model = cost_model if cost_model is not None else CostModel()
        # The context's own persistent-pool handle (workers fork only
        # when a plan actually warrants them).  Sharing a handle across
        # contexts is allowed — pass the same one — but the default is
        # isolation: two contexts with different settings no longer
        # tear down each other's warm workers.
        self.pool: "EnginePool" = pool if pool is not None else EnginePool()
        self.stats = CacheStats()
        self._graphs: Dict[str, DataflowGraph] = {}
        self._compiled_plans: Dict[str, Optional[CompiledPlan]] = {}
        self._batched_plans: Dict[str, Optional[BatchedPlan]] = {}
        self._fingerprints: Dict[int, Tuple[ILProgram, str]] = {}
        self._traces: Dict[int, Trace] = {}
        self._channel_arrays: Dict[int, Dict[str, tuple]] = {}
        self._hub_runs: Dict[Tuple[str, int, float], Tuple[WakeEvent, ...]] = {}
        self._shape_sigs: Dict[str, str] = {}
        self._structural_keys: Dict[str, tuple] = {}
        self._detections: Dict[tuple, Tuple["Detection", ...]] = {}
        self._events: Dict[tuple, Tuple["GroundTruthEvent", ...]] = {}
        self._apps: Dict[int, "SensingApplication"] = {}

    # -- compiled conditions -------------------------------------------

    def fingerprint(self, program: ILProgram) -> str:
        """Content fingerprint, memoized per program object."""
        entry = self._fingerprints.get(id(program))
        if entry is not None and entry[0] is program:
            return entry[1]
        fp = program_fingerprint(program)
        self._fingerprints[id(program)] = (program, fp)
        return fp

    def compile(self, pipeline: ProcessingPipeline) -> DataflowGraph:
        """Compile and validate a wake-up pipeline, memoized by content."""
        return self.validated(compile_pipeline(pipeline))

    def validated(self, program: ILProgram) -> DataflowGraph:
        """A validated executable graph for ``program``, memoized.

        The returned graph may be shared across runs; callers must
        treat it as checked out for the duration of one run (the
        context resets it before each cached hub run).
        """
        if not self.cache:
            return validate_program(program)
        fp = self.fingerprint(program)
        graph = self._graphs.get(fp)
        if graph is not None:
            self.stats.compile_hits += 1
            return graph
        self.stats.compile_misses += 1
        graph = validate_program(program)
        self._graphs[fp] = graph
        return graph

    def compiled_plan(self, graph: DataflowGraph) -> Optional[CompiledPlan]:
        """The graph's whole-trace array program, or ``None`` if ineligible.

        Memoized by the IL program's content fingerprint alongside the
        validated-graph cache; ineligibility is memoized too (as
        ``None``), so the eligibility walk runs once per condition.
        """
        if not self.cache:
            if compile_eligibility(graph) is None:
                return compile_graph(graph)
            return None
        fp = self.fingerprint(graph.program)
        if fp in self._compiled_plans:
            self.stats.plan_hits += 1
            return self._compiled_plans[fp]
        self.stats.plan_misses += 1
        plan = (
            compile_graph(graph) if compile_eligibility(graph) is None else None
        )
        self._compiled_plans[fp] = plan
        return plan

    def batched_plan(self, graph: DataflowGraph) -> Optional[BatchedPlan]:
        """The graph's tensor-major array program, or ``None`` if ineligible.

        Memoized like :meth:`compiled_plan` (ineligibility included).
        Batch eligibility is compile eligibility plus a scalar output
        stream (:func:`repro.hub.compile.batch_eligibility`), so every
        batched plan has a per-trace twin to fall back on.
        """
        if not self.cache:
            if batch_eligibility(graph) is None:
                return compile_batched(graph)
            return None
        fp = self.fingerprint(graph.program)
        if fp in self._batched_plans:
            return self._batched_plans[fp]
        plan = (
            compile_batched(graph) if batch_eligibility(graph) is None else None
        )
        self._batched_plans[fp] = plan
        return plan

    def shape_sig(self, graph: DataflowGraph) -> str:
        """The graph's canonical shape signature, memoized by fingerprint.

        Parameters are struck out (only names survive), so distinctly
        tuned copies of one detector share a signature — the key the
        heterogeneous batching path groups by.
        """
        fp = self.fingerprint(graph.program)
        sig = self._shape_sigs.get(fp)
        if sig is None:
            sig = shape_signature(graph)
            self._shape_sigs[fp] = sig
        return sig

    def struct_key(self, graph: DataflowGraph) -> tuple:
        """Non-liftable parameter values in topo order, memoized.

        Two shape-equal graphs with equal structural keys differ only
        in parameters the row-lowering kernels can vary per row, so
        they may share one heterogeneous dispatch.
        """
        fp = self.fingerprint(graph.program)
        key = self._structural_keys.get(fp)
        if key is None:
            key = structural_key(graph)
            self._structural_keys[fp] = key
        return key

    # -- traces --------------------------------------------------------

    def _trace_key(self, trace: Trace) -> int:
        key = id(trace)
        pinned = self._traces.get(key)
        if pinned is not trace:
            self._traces[key] = trace
            self._channel_arrays.pop(key, None)
        return key

    def channel_arrays(self, trace: Trace) -> Dict[str, tuple]:
        """``trace.channel_arrays()``, computed once per trace."""
        if not self.cache:
            return trace.channel_arrays()
        key = self._trace_key(trace)
        arrays = self._channel_arrays.get(key)
        if arrays is not None:
            self.stats.trace_hits += 1
            return arrays
        self.stats.trace_misses += 1
        arrays = trace.channel_arrays()
        self._channel_arrays[key] = arrays
        return arrays

    # -- hub runs ------------------------------------------------------

    def wake_events(
        self, graph: DataflowGraph, trace: Trace, chunk_seconds: float = 4.0
    ) -> Tuple[WakeEvent, ...]:
        """Wake events of one condition over one trace, computed once.

        Raises:
            HubExecutionError: when the trace lacks a channel the
                condition reads.
        """
        if not self.cache:
            return tuple(self._interpret(graph, trace, chunk_seconds))
        key = (
            self.fingerprint(graph.program),
            self._trace_key(trace),
            float(chunk_seconds),
        )
        events = self._hub_runs.get(key)
        if events is not None:
            self.stats.hub_hits += 1
            return events
        self.stats.hub_misses += 1
        events = tuple(self._interpret(graph, trace, chunk_seconds))
        self._hub_runs[key] = events
        return events

    def _trace_channels(
        self, graph_channels: Sequence[str], trace: Trace
    ) -> Dict[str, tuple]:
        """The trace's channel arrays a condition reads, validated."""
        arrays = self.channel_arrays(trace)
        channels = {
            name: triple
            for name, triple in arrays.items()
            if name in graph_channels
        }
        missing = set(graph_channels) - set(channels)
        if missing:
            raise HubExecutionError(
                f"trace {trace.name!r} lacks channels {sorted(missing)} "
                "needed by the wake-up condition"
            )
        return channels

    def _allowed_tiers(
        self, graph: DataflowGraph, plan: Optional[CompiledPlan]
    ) -> List[str]:
        """Execution tiers this context's flags permit for ``graph``."""
        allowed: List[str] = []
        if plan is not None:
            allowed.append("compiled")
        if self.fuse and fusion_eligibility(graph) is None:
            allowed.append("fused")
        allowed.append("rounds")
        return allowed

    def _interpret(
        self,
        graph: DataflowGraph,
        trace: Trace,
        chunk_seconds: float,
        extra_keys: Sequence[str] = (),
        force_tier: Optional[str] = None,
    ) -> List[WakeEvent]:
        channels = self._trace_channels(graph.channels, trace)
        plan = self.compiled_plan(graph) if self.compiled else None
        allowed = self._allowed_tiers(graph, plan)
        fp = self.fingerprint(graph.program)
        # Every tier is bit-identical, so the cost model only picks the
        # fastest way to the same events — and the run it was going to
        # do anyway doubles as its measurement sample.  A caller probing
        # on behalf of a *shared* key (the shape-batch path) forces the
        # tier that key still needs measured and lists the key in
        # ``extra_keys`` so the sample lands there too.
        if force_tier is not None and force_tier in allowed:
            tier = force_tier
        else:
            tier = self.cost_model.choose(fp, allowed)
        items = sum(len(triple[0]) for triple in channels.values())
        start = time.perf_counter()
        if tier == "compiled":
            # The compiled whole-trace array program (no rounds, no
            # interpreter state at all).  Plans are pure, so no reset.
            events = plan.execute(channels)
        else:
            # The graph may be a cached instance whose algorithm objects
            # carry state from a previous run; start cold.
            graph.reset()
            runtime = HubRuntime(graph)
            if tier == "fused":
                events = runtime.run_fused(channels, chunk_seconds)
            else:
                events = runtime.run(split_into_rounds(channels, chunk_seconds))
        elapsed = time.perf_counter() - start
        self.cost_model.observe(fp, tier, elapsed, items)
        for key in extra_keys:
            self.cost_model.observe(key, tier, elapsed, items)
        return events

    def _wake_events_probed(
        self,
        graph: DataflowGraph,
        trace: Trace,
        chunk_seconds: float,
        shape_key: str,
    ) -> Tuple[WakeEvent, ...]:
        """One cached per-trace run that doubles as a *shape-key* probe.

        In a heterogeneous group every row's fingerprint is fresh, so a
        plain :meth:`wake_events` would always pick the preferred tier
        and the shared shape key would never finish probing.  This
        variant forces the tier the shape key's own probe schedule asks
        for and observes the sample under both the row's fingerprint
        and the shape key.
        """
        key = (
            self.fingerprint(graph.program),
            self._trace_key(trace),
            float(chunk_seconds),
        )
        cached = self._hub_runs.get(key)
        if cached is not None:
            self.stats.hub_hits += 1
            return cached
        self.stats.hub_misses += 1
        plan = self.compiled_plan(graph) if self.compiled else None
        tier = self.cost_model.choose(
            shape_key, self._allowed_tiers(graph, plan)
        )
        events = tuple(
            self._interpret(
                graph,
                trace,
                chunk_seconds,
                extra_keys=(shape_key,),
                force_tier=tier,
            )
        )
        self._hub_runs[key] = events
        return events

    def wake_events_batch(
        self,
        items: Sequence[Tuple[DataflowGraph, Trace]],
        chunk_seconds: float = 4.0,
    ) -> List[Tuple[WakeEvent, ...]]:
        """Wake events for many (condition, trace) pairs, batched.

        Bit-identical to calling :meth:`wake_events` per pair, in input
        order — batching only changes how the uncached work is computed.
        Cached pairs are served as usual; the rest group by condition
        fingerprint.  A group's rows run individually until the cost
        model settles — those runs *are* the probes — and once it
        commits to the compiled tier the remaining rows (two or more)
        go tensor-major: one
        :meth:`repro.hub.compile.BatchedPlan.execute_batch` dispatch
        over stacked channel arrays.  Anything else — ineligible
        graphs, fingerprints settled on another tier, singleton
        remainders, a context with ``batch``/``cache``/``compiled``
        off — stays on the per-trace path.  Results are cached under
        the same keys either way, so later :meth:`wake_events` calls
        hit.

        With ``shape_batch`` on (the default), fingerprint groups that
        share a graph *shape* (:func:`repro.hub.compile.shape_signature`
        — same opcodes and wiring, different parameter values) merge
        into one heterogeneous group first: probing is keyed by the
        shape signature, rows sub-group by structural key and rate, the
        batch-size-aware cost profile arbitrates between one big shape
        batch and per-fingerprint batches, and a shape dispatch lifts
        per-row parameters into tensors
        (:meth:`repro.hub.compile.BatchedPlan.execute_shape_batch`).

        Raises:
            HubExecutionError: when a trace lacks a channel its
                condition reads.
        """
        results: List[Optional[Tuple[WakeEvent, ...]]] = [None] * len(items)
        if not (self.batch and self.cache and self.compiled):
            for i, (graph, trace) in enumerate(items):
                results[i] = self.wake_events(graph, trace, chunk_seconds)
            return results  # type: ignore[return-value]
        # Group uncached work by condition fingerprint; one entry per
        # distinct trace (duplicate pairs share the entry's result).
        groups: Dict[
            str, Dict[int, Tuple[DataflowGraph, Trace, List[int]]]
        ] = {}
        for i, (graph, trace) in enumerate(items):
            key = (
                self.fingerprint(graph.program),
                self._trace_key(trace),
                float(chunk_seconds),
            )
            cached = self._hub_runs.get(key)
            if cached is not None:
                self.stats.hub_hits += 1
                results[i] = cached
                continue
            entry = groups.setdefault(key[0], {}).get(key[1])
            if entry is None:
                groups[key[0]][key[1]] = (graph, trace, [i])
            else:
                entry[2].append(i)
        # Merge fingerprint groups that share a graph shape into
        # heterogeneous groups (two or more distinct fingerprints, all
        # batch-eligible); everything else drains homogeneously below.
        shape_groups: Dict[
            str, List[Tuple[str, List[Tuple[DataflowGraph, Trace, List[int]]]]]
        ] = {}
        if self.shape_batch:
            by_sig: Dict[str, List[str]] = {}
            for fp, members in groups.items():
                graph = next(iter(members.values()))[0]
                if self.batched_plan(graph) is None:
                    continue
                by_sig.setdefault(self.shape_sig(graph), []).append(fp)
            for sig, fps in by_sig.items():
                if len(fps) < 2:
                    continue
                shape_groups[sig] = [
                    (fp, list(groups.pop(fp).values())) for fp in fps
                ]
        for fp, members in groups.items():
            rows = list(members.values())
            graph = rows[0][0]
            plan = self.compiled_plan(graph)
            bplan = self.batched_plan(graph) if plan is not None else None
            # Run rows individually until the model settles — each call
            # lands in _interpret, which times its tier and feeds the
            # cost model, so these runs double as the probes.  A group
            # whose condition is not batch-eligible drains entirely
            # this way.
            pending = list(rows)
            while pending:
                settled = (
                    self.cost_model.selection(
                        fp, self._allowed_tiers(graph, plan)
                    )
                    if bplan is not None
                    else None
                )
                if settled == "compiled" and len(pending) >= 2:
                    break
                row_graph, row_trace, indices = pending.pop(0)
                events = self.wake_events(row_graph, row_trace, chunk_seconds)
                for i in indices:
                    results[i] = events
            if not pending:
                continue
            rows = pending
            # Rows must agree per channel on sampling rate to stack;
            # split by the rate signature (almost always one group).
            by_rate: Dict[tuple, List[Tuple[Trace, List[int], Dict[str, tuple]]]] = {}
            for _, row_trace, indices in rows:
                channels = self._trace_channels(bplan.channels, row_trace)
                sig = tuple(float(channels[name][2]) for name in bplan.channels)
                by_rate.setdefault(sig, []).append((row_trace, indices, channels))
            for sub in by_rate.values():
                self._run_homogeneous_batch(
                    fp,
                    bplan,
                    [(graph, row_trace, indices, channels)
                     for row_trace, indices, channels in sub],
                    chunk_seconds,
                    results,
                )
        for sig, parts in shape_groups.items():
            self._run_shape_group(sig, parts, chunk_seconds, results)
        return results  # type: ignore[return-value]

    def _run_homogeneous_batch(
        self,
        fp: str,
        bplan: BatchedPlan,
        sub: List[Tuple[DataflowGraph, Trace, List[int], Dict[str, tuple]]],
        chunk_seconds: float,
        results: List[Optional[Tuple[WakeEvent, ...]]],
    ) -> None:
        """Dispatch one same-fingerprint, same-rate batch (or singleton)."""
        if len(sub) == 1:
            row_graph, row_trace, indices, _ = sub[0]
            events = self.wake_events(row_graph, row_trace, chunk_seconds)
            for i in indices:
                results[i] = events
            return
        total_items = sum(
            len(triple[0])
            for _, _, _, channels in sub
            for triple in channels.values()
        )
        start = time.perf_counter()
        batch_events, info = bplan.execute_batch_with_info(
            [channels for _, _, _, channels in sub]
        )
        self.cost_model.observe(
            fp,
            "compiled",
            time.perf_counter() - start,
            total_items,
            batch_size=len(sub),
        )
        self.stats.batch_rounds += 1
        self.stats.batched_cells += len(sub)
        self.stats.batch_padded_cells += info.padded_cells
        self.stats.batch_valid_cells += info.valid_cells
        for (_, row_trace, indices, _), row_events in zip(sub, batch_events):
            events = tuple(row_events)
            self.stats.hub_misses += 1
            self._hub_runs[
                (fp, self._trace_key(row_trace), float(chunk_seconds))
            ] = events
            for i in indices:
                results[i] = events

    def _run_shape_group(
        self,
        sig: str,
        parts: List[Tuple[str, List[Tuple[DataflowGraph, Trace, List[int]]]]],
        chunk_seconds: float,
        results: List[Optional[Tuple[WakeEvent, ...]]],
    ) -> None:
        """Run one heterogeneous (shared-shape) group of uncached work.

        Mirrors the homogeneous loop, but keyed by the shape signature:
        rows run individually as *shape-key* probes (forcing the tier
        the shared key still needs measured — each row's fingerprint is
        fresh, so per-fingerprint probing would never settle the shape)
        until the model commits to the compiled tier, then the
        remainder sub-groups by structural key and rate signature.
        Each sub-group asks the batch-size profile whether one
        parameterized shape dispatch beats splitting back into
        per-fingerprint batches, and goes tensor-major accordingly.
        """
        rows: List[Tuple[str, DataflowGraph, Trace, List[int]]] = [
            (fp, graph, trace, indices)
            for fp, members in parts
            for graph, trace, indices in members
        ]
        rep_graph = rows[0][1]
        allowed = self._allowed_tiers(rep_graph, self.compiled_plan(rep_graph))
        pending = rows
        while pending:
            settled = self.cost_model.selection(sig, allowed)
            if settled == "compiled" and len(pending) >= 2:
                break
            fp, row_graph, row_trace, indices = pending.pop(0)
            events = self._wake_events_probed(
                row_graph, row_trace, chunk_seconds, sig
            )
            for i in indices:
                results[i] = events
        if not pending:
            return
        # Rows must agree on non-liftable parameter values (structural
        # key) and per-channel sampling rates to share a stacked
        # dispatch; split accordingly (almost always one sub-group).
        subgroups: Dict[
            tuple,
            List[Tuple[str, DataflowGraph, Trace, List[int], Dict[str, tuple]]],
        ] = {}
        for fp, row_graph, row_trace, indices in pending:
            bplan = self.batched_plan(row_graph)
            channels = self._trace_channels(bplan.channels, row_trace)
            rate_sig = tuple(
                float(channels[name][2]) for name in bplan.channels
            )
            key = (self.struct_key(row_graph), rate_sig)
            subgroups.setdefault(key, []).append(
                (fp, row_graph, row_trace, indices, channels)
            )
        for sub in subgroups.values():
            if len(sub) == 1:
                fp, row_graph, row_trace, indices, _ = sub[0]
                events = self.wake_events(row_graph, row_trace, chunk_seconds)
                for i in indices:
                    results[i] = events
                continue
            counts: Dict[str, int] = {}
            for fp, *_ in sub:
                counts[fp] = counts.get(fp, 0) + 1
            if not self.cost_model.choose_shape_batching(
                sig, list(counts.items())
            ):
                # The profile prices one big (padded, ragged) shape
                # batch worse than exact-fingerprint batches: regroup.
                by_fp: Dict[str, List[tuple]] = {}
                for entry in sub:
                    by_fp.setdefault(entry[0], []).append(entry)
                for part_fp, fp_rows in by_fp.items():
                    self._run_homogeneous_batch(
                        part_fp,
                        self.batched_plan(fp_rows[0][1]),
                        [(g, t, idx, ch) for _, g, t, idx, ch in fp_rows],
                        chunk_seconds,
                        results,
                    )
                continue
            total_items = sum(
                len(triple[0])
                for *_, channels in sub
                for triple in channels.values()
            )
            bplan = self.batched_plan(sub[0][1])
            start = time.perf_counter()
            batch_events, info = bplan.execute_shape_batch_with_info(
                [
                    (self.compiled_plan(row_graph), channels)
                    for _, row_graph, _, _, channels in sub
                ]
            )
            self.cost_model.observe(
                sig,
                "compiled",
                time.perf_counter() - start,
                total_items,
                batch_size=len(sub),
            )
            self.stats.shape_rounds += 1
            self.stats.shape_cells += len(sub)
            self.stats.batch_padded_cells += info.padded_cells
            self.stats.batch_valid_cells += info.valid_cells
            for (fp, _, row_trace, indices, _), row_events in zip(
                sub, batch_events
            ):
                events = tuple(row_events)
                self.stats.hub_misses += 1
                self._hub_runs[
                    (fp, self._trace_key(row_trace), float(chunk_seconds))
                ] = events
                for i in indices:
                    results[i] = events

    # -- application detectors -----------------------------------------

    def _app_key(self, app: "SensingApplication") -> tuple:
        """Content key for an application instance.

        Covers the class and all constructor-visible state, so a copy
        of the app unpickled in a pool worker shares cache entries with
        the original, while a differently parameterized copy does not.
        Falls back to object identity (with the instance pinned so the
        id cannot be recycled) when the state has no stable repr.
        """
        try:
            state = repr(sorted(vars(app).items()))
        except Exception:
            self._apps[id(app)] = app
            state = f"id:{id(app)}"
        return (type(app).__module__, type(app).__qualname__, state)

    def detections(
        self,
        app: "SensingApplication",
        trace: Trace,
        windows: Sequence[Tuple[float, float]],
    ) -> Tuple["Detection", ...]:
        """``app.detect(trace, windows)``, memoized on the merged spans."""
        if not self.cache:
            return tuple(app.detect(trace, list(windows)))
        from repro.apps.detectors import merge_spans

        key = (
            self._app_key(app),
            self._trace_key(trace),
            tuple(
                (float(a), float(b))
                for a, b in merge_spans([(float(a), float(b)) for a, b in windows])
            ),
        )
        cached = self._detections.get(key)
        if cached is not None:
            self.stats.detect_hits += 1
            return cached
        self.stats.detect_misses += 1
        cached = tuple(app.detect(trace, list(windows)))
        self._detections[key] = cached
        return cached

    def events_of_interest(
        self, app: "SensingApplication", trace: Trace
    ) -> Tuple["GroundTruthEvent", ...]:
        """``app.events_of_interest(trace)``, memoized."""
        if not self.cache:
            return tuple(app.events_of_interest(trace))
        key = (self._app_key(app), self._trace_key(trace))
        cached = self._events.get(key)
        if cached is not None:
            self.stats.detect_hits += 1
            return cached
        self.stats.detect_misses += 1
        cached = tuple(app.events_of_interest(trace))
        self._events[key] = cached
        return cached

    # -- pool lifecycle ------------------------------------------------

    def shutdown_pool(self) -> None:
        """Tear down this context's worker pool (idempotent).

        Only this context's workers: other contexts' pools — and the
        module default pool — are untouched.
        """
        self.pool.shutdown()


# -- the experiment matrix planner/executor ----------------------------


@dataclass(frozen=True)
class RunCell:
    """One (configuration, application, trace) cell of an experiment plan.

    Attributes:
        index: Position in the plan — results are always returned in
            index order, however the cells were executed.
        config: The sensing configuration to run.
        app: The application to simulate.
        trace: The trace to replay.
    """

    index: int
    config: "SensingConfiguration"
    app: "SensingApplication"
    trace: Trace

    @property
    def key(self) -> Tuple[str, str, str]:
        """(config name, app name, trace name) label."""
        return (self.config.name, self.app.name, self.trace.name)


@dataclass(frozen=True)
class SkippedCell:
    """One (application, trace) pair a sweep could not run.

    Attributes:
        app_name: The application that was skipped.
        trace_name: The trace it was skipped on.
        missing_channels: Sensor channels the app needs but the trace
            lacks.
    """

    app_name: str
    trace_name: str
    missing_channels: Tuple[str, ...]

    def describe(self) -> str:
        """One-line human-readable description."""
        channels = ", ".join(self.missing_channels)
        return (
            f"{self.app_name} on {self.trace_name}: "
            f"trace lacks channel(s) {channels}"
        )


@dataclass
class RunPlan:
    """An explicit experiment matrix: the cells to run and the skips.

    Attributes:
        cells: Runnable cells in deterministic order (trace-major, then
            application, then configuration — the order hub-run caching
            benefits from most).
        skipped: (app, trace) pairs excluded because the trace lacks
            the application's sensors.
    """

    cells: List[RunCell] = field(default_factory=list)
    skipped: List[SkippedCell] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.cells)


def plan_matrix(
    configs: Sequence["SensingConfiguration"],
    apps: Sequence["SensingApplication"],
    traces: Sequence[Trace],
) -> RunPlan:
    """Build the explicit plan for a (config × app × trace) sweep."""
    plan = RunPlan()
    index = 0
    for trace in traces:
        for app in apps:
            missing = tuple(
                sorted(c for c in app.channels if c not in trace.data)
            )
            if missing:
                plan.skipped.append(
                    SkippedCell(app.name, trace.name, missing)
                )
                continue
            for config in configs:
                plan.cells.append(RunCell(index, config, app, trace))
                index += 1
    return plan


def plan_from_cells(
    triples: Sequence[
        Tuple["SensingConfiguration", "SensingApplication", Trace]
    ],
) -> RunPlan:
    """An explicit plan from pre-selected (config, app, trace) triples.

    The bridge the serving layer uses: a scheduler that has already
    deduplicated its submissions hands the surviving work here instead
    of a full cross-product.  Triples are reordered trace-major (stable
    by first appearance, preserving relative order within a trace) so
    :func:`execute_plan` batches them the way hub-run caching and the
    persistent pool benefit from most.  Cell indices refer to positions
    in the *input* sequence, so results from :func:`execute_plan` come
    back in the caller's submission order.

    (app, trace) pairs whose trace lacks the app's sensors are recorded
    on :attr:`RunPlan.skipped` exactly as :func:`plan_matrix` does —
    callers that pre-validated channels can treat a skip as a bug.
    """
    plan = RunPlan()
    order: List[Trace] = []
    by_trace: Dict[int, List[RunCell]] = {}
    for index, (config, app, trace) in enumerate(triples):
        missing = tuple(
            sorted(c for c in app.channels if c not in trace.data)
        )
        if missing:
            plan.skipped.append(SkippedCell(app.name, trace.name, missing))
            continue
        if id(trace) not in by_trace:
            order.append(trace)
            by_trace[id(trace)] = []
        by_trace[id(trace)].append(RunCell(index, config, app, trace))
    for trace in order:
        plan.cells.extend(by_trace[id(trace)])
    return plan


def _group_cells_by_trace(cells: Sequence[RunCell]) -> List[List[RunCell]]:
    """Consecutive cells sharing a trace, in plan order.

    Grouping by trace keeps every cell that can share hub runs and
    channel arrays inside one worker, so per-worker contexts still
    deduplicate nearly as well as one shared context.
    """
    groups: List[List[RunCell]] = []
    current: List[RunCell] = []
    for cell in cells:
        if current and current[-1].trace is not cell.trace:
            groups.append(current)
            current = []
        current.append(cell)
    if current:
        groups.append(current)
    return groups


@dataclass(frozen=True)
class ExecutionInfo:
    """How :func:`execute_plan` actually ran a plan.

    Attributes:
        requested_jobs: The ``jobs`` argument the caller passed.
        mode: ``"serial"`` or ``"pool"``.
        workers: Pool size actually used (1 for serial).
        batches: Number of trace-major batches dispatched (0 for
            serial).
        pool_reused: True when a warm persistent pool from an earlier
            call served this plan (worker caches already populated).
        reason: Human-readable explanation of the serial-vs-pool
            decision — the heuristic made observable.
        cache_stats: The executing context's cache counters
            (:meth:`CacheStats.as_dict`) snapshotted after the plan ran
            — only for serial runs, where one context served every
            cell.  ``None`` for pool runs (each worker owns private
            counters that outlive the call).
    """

    requested_jobs: int
    mode: str
    workers: int
    batches: int
    pool_reused: bool
    reason: str
    cache_stats: Optional[Dict[str, int]] = None


#: Plans smaller than this are run serially even when ``jobs > 1``
#: (unless a warm compatible pool already exists): forking workers,
#: shipping traces, and re-warming per-worker caches costs roughly this
#: many cells' worth of work, so smaller plans cannot amortize it.
MIN_POOL_CELLS = 24

# Worker-side state, set once by the pool initializer.
_WORKER_CONTEXT: Optional[RunContext] = None
_WORKER_TRACES: Dict[str, Trace] = {}


def _pool_worker_init(
    payload: tuple,
    cache: bool,
    fuse: bool,
    compiled: bool,
    batch: bool,
    shape_batch: bool,
) -> None:
    """Pool initializer: one warm context + trace registry per worker.

    Runs once per worker process.  Each trace crosses into each worker
    exactly once, here; later batch dispatches refer to traces by name.
    ``payload`` is a trace-shipping envelope from
    :func:`repro.sim.shm.export_traces` — either hollow traces backed
    by shared-memory segments (so N workers map one copy of the channel
    arrays instead of unpickling N) or plain pickled traces when shared
    memory is unavailable.
    """
    global _WORKER_CONTEXT, _WORKER_TRACES
    from repro.sim.shm import attach_traces

    _WORKER_CONTEXT = RunContext(
        cache=cache,
        fuse=fuse,
        compiled=compiled,
        batch=batch,
        shape_batch=shape_batch,
    )
    _WORKER_TRACES = {trace.name: trace for trace in attach_traces(payload)}


def _run_batch(
    trace_name: str,
    cells: List[Tuple[int, "SensingConfiguration", "SensingApplication"]],
    profile: PhonePowerProfile,
) -> List[Tuple[int, "SimulationResult"]]:
    """Worker body: run one trace-major batch through the warm context."""
    trace = _WORKER_TRACES[trace_name]
    context = _WORKER_CONTEXT
    return [
        (index, config.run(app, trace, profile, context=context))
        for index, config, app in cells
    ]


class EnginePool:
    """One persistent process-pool handle, owned by whoever made it.

    A cold ProcessPoolExecutor per ``execute_plan()`` call was
    measurably *slower* than serial (parallel_speedup 0.75 in the PR-2
    benchmark): every call re-forked workers, re-pickled every trace,
    and rebuilt per-worker caches from nothing.  Instead one pool lives
    across calls; its workers each hold a warm :class:`RunContext` plus
    a trace registry filled once at worker start, so a re-dispatch
    ships only (config, app) cell descriptions — never traces — and
    hits the worker's caches immediately.

    Pool lifetime used to be module-global, which made two contexts
    with different ``batch=`` / ``fuse=`` settings contend for one key
    space — every settings flip tore down the other context's warm
    workers.  Now each :class:`RunContext` owns its own handle
    (``context.pool``), and the module keeps one default handle for
    context-less callers; :func:`shutdown_pool` tears down the default,
    :meth:`RunContext.shutdown_pool` a context's own.  Handles are
    cheap until :meth:`obtain` actually forks workers, and every live
    handle is torn down at interpreter exit.
    """

    def __init__(self) -> None:
        self._pool: Optional[ProcessPoolExecutor] = None
        self._key: Optional[tuple] = None
        self._workers: int = 0
        self._traces: Dict[str, Trace] = {}
        self._export = None  # TraceExport keeping shm segments alive
        _LIVE_POOLS.add(self)

    @property
    def export(self):
        """The live trace-shipping envelope, or ``None`` (tests only)."""
        return self._export

    @property
    def active(self) -> bool:
        """True while worker processes are alive."""
        return self._pool is not None

    def shutdown(self) -> None:
        """Tear down the workers (idempotent; the handle stays usable)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
        if self._export is not None:
            # Workers are gone (shutdown waited), so the segments can
            # be unlinked; until here this export kept them alive.
            self._export.close()
        self._pool = None
        self._key = None
        self._workers = 0
        self._traces = {}
        self._export = None

    def obtain(
        self,
        workers: int,
        cache: bool,
        fuse: bool,
        compiled: bool,
        batch: bool,
        shape_batch: bool,
        traces: List[Trace],
    ) -> Tuple[ProcessPoolExecutor, int, bool]:
        """The pool for these settings, (re)built if needed.

        Reuses the live pool when its cache/fuse/compiled/batch
        settings match, it has at least as many workers as requested,
        and every plan trace is already registered in the workers (same
        name *and* same object — a different object under a known name
        would silently run on stale data).  A warm pool with surplus
        workers is kept rather than resized: the surplus idles, while a
        rebuild would discard every worker's warm caches.  Returns
        ``(pool, workers, reused)``.

        Traces ship to workers through shared memory when the platform
        supports it (:func:`repro.sim.shm.export_traces`): the
        initializer payload then carries only channel metadata plus
        segment names, and every worker maps the parent's arrays
        instead of re-materializing its own copy of every trace.
        """
        from repro.sim.shm import export_traces

        key = (
            bool(cache), bool(fuse), bool(compiled), bool(batch),
            bool(shape_batch),
        )
        if (
            self._pool is not None
            and self._key == key
            and self._workers >= workers
        ):
            shipped = all(
                self._traces.get(trace.name) is trace for trace in traces
            )
            if shipped:
                return self._pool, self._workers, True
        self.shutdown()
        registry = {trace.name: trace for trace in traces}
        export = export_traces(list(registry.values()))
        self._pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_pool_worker_init,
            initargs=(export.payload, cache, fuse, compiled, batch, shape_batch),
        )
        self._key = key
        self._workers = workers
        # Strong references keep trace ids from being recycled while
        # the pool that shipped them is alive.
        self._traces = registry
        self._export = export
        return self._pool, workers, False

    def is_warm(
        self,
        plan: RunPlan,
        jobs: int,
        cache: bool = True,
        fuse: bool = True,
        compiled: bool = True,
        batch: bool = True,
        shape_batch: bool = True,
    ) -> bool:
        """True when this handle's live pool could serve the plan as-is."""
        if self._pool is None or jobs <= 1:
            return False
        if self._key != (
            bool(cache), bool(fuse), bool(compiled), bool(batch),
            bool(shape_batch),
        ):
            return False
        return all(
            self._traces.get(cell.trace.name) is cell.trace
            for cell in plan.cells
        )


# Every handle ever constructed, so interpreter exit reaps stray
# workers even when an embedder forgot its own shutdown.  Weak refs:
# a collected handle already lost its workers via ProcessPoolExecutor
# finalization, and pinning it here would leak every per-context pool.
_LIVE_POOLS: "weakref.WeakSet[EnginePool]" = weakref.WeakSet()

#: The default handle, used by ``execute_plan(..., context=None)``
#: callers; one warm pool therefore still persists across bare calls.
_DEFAULT_POOL = EnginePool()


def _shutdown_all_pools() -> None:
    for handle in list(_LIVE_POOLS):
        handle.shutdown()


atexit.register(_shutdown_all_pools)


def pool_is_warm(
    plan: RunPlan,
    jobs: int,
    cache: bool = True,
    fuse: bool = True,
    compiled: bool = True,
    batch: bool = True,
    shape_batch: bool = True,
    pool: Optional[EnginePool] = None,
) -> bool:
    """True when the (default or given) pool could serve this plan as-is."""
    handle = pool if pool is not None else _DEFAULT_POOL
    return handle.is_warm(
        plan,
        jobs,
        cache=cache,
        fuse=fuse,
        compiled=compiled,
        batch=batch,
        shape_batch=shape_batch,
    )


def shutdown_pool() -> None:
    """Tear down the *default* pool (idempotent).

    Contexts own their pools now — use
    :meth:`RunContext.shutdown_pool` for those; this remains the
    teardown for context-less ``execute_plan`` callers and older tests.
    """
    _DEFAULT_POOL.shutdown()


def _prewarm_batches(cells: Sequence[RunCell], context: RunContext) -> None:
    """Collect same-condition cells before dispatch and batch their hub runs.

    A serial plan visits cells one at a time, so without this the first
    cell of every (condition, trace) pair interprets alone even when
    nineteen sibling traces carry identical work.  This pass asks each
    configuration for the condition it is about to run
    (:meth:`SensingConfiguration.condition_graph`), deduplicates the
    (condition, trace) pairs, and pushes them through
    :meth:`RunContext.wake_events_batch` — warming the hub-run cache
    with tensor-major executions the per-cell loop then hits.

    Purely an execution-order change: every cached entry is
    bit-identical to the per-cell run that would otherwise compute it.
    Fault-injected configurations replay conditions through the
    round-level fault simulator, so their cells never join a batch, and
    any error (unsupported app, missing channel) is left for the owning
    cell to surface on its own terms.
    """
    if not (context.batch and context.cache and context.compiled):
        return
    pairs: List[Tuple[DataflowGraph, Trace]] = []
    seen: set = set()
    for cell in cells:
        if getattr(cell.config, "fault_plan", None) is not None:
            continue
        try:
            graph = cell.config.condition_graph(cell.app, context)
        except Exception:
            continue
        if graph is None:
            continue
        key = (context.fingerprint(graph.program), id(cell.trace))
        if key in seen:
            continue
        seen.add(key)
        pairs.append((graph, cell.trace))
    if len(pairs) < 2:
        return
    try:
        context.wake_events_batch(pairs)
    except HubExecutionError:
        pass


def _run_serial(
    plan: RunPlan, profile: PhonePowerProfile, ctx: RunContext
) -> List[Tuple[int, "SimulationResult"]]:
    """Run every cell through one shared context, batch-prewarmed."""
    _prewarm_batches(plan.cells, ctx)
    indexed = [
        (cell.index, cell.config.run(cell.app, cell.trace, profile, context=ctx))
        for cell in plan.cells
    ]
    indexed.sort(key=lambda pair: pair[0])
    return indexed


def execute_plan(
    plan: RunPlan,
    jobs: int = 1,
    cache: bool = True,
    profile: PhonePowerProfile = NEXUS4,
    context: Optional[RunContext] = None,
    fuse: bool = True,
    compiled: bool = True,
    batch: bool = True,
    shape_batch: bool = True,
) -> List["SimulationResult"]:
    """Execute a plan and return results in plan (index) order.

    See :func:`execute_plan_with_info` for the full contract; this
    wrapper discards the :class:`ExecutionInfo`.
    """
    results, _ = execute_plan_with_info(
        plan,
        jobs=jobs,
        cache=cache,
        profile=profile,
        context=context,
        fuse=fuse,
        compiled=compiled,
        batch=batch,
        shape_batch=shape_batch,
    )
    return results


def execute_plan_with_info(
    plan: RunPlan,
    jobs: int = 1,
    cache: bool = True,
    profile: PhonePowerProfile = NEXUS4,
    context: Optional[RunContext] = None,
    fuse: bool = True,
    compiled: bool = True,
    batch: bool = True,
    shape_batch: bool = True,
) -> Tuple[List["SimulationResult"], ExecutionInfo]:
    """Execute a plan; return results in plan order plus how they ran.

    Args:
        plan: The matrix to run.
        jobs: 1 runs serially through one shared context; ``N > 1``
            requests the persistent process pool.  The pool is only
            used when the plan is large enough to amortize worker
            startup (``MIN_POOL_CELLS``) or a warm compatible pool is
            already alive; otherwise the plan runs serially and the
            returned :class:`ExecutionInfo` says why.
        cache: Enable :class:`RunContext` memoization (results are
            identical either way).
        profile: Phone power profile for every cell.
        context: Optional externally owned context for serial runs —
            pass the same context again to reuse a warm cache across
            sweeps.  Ignored when the pool runs the plan (worker
            processes cannot share it).
        fuse: Enable the fused hub fast path (results are identical
            either way; the ``--no-fuse`` escape hatch).
        compiled: Enable the compiled whole-trace hub path (results
            are identical either way; the ``--no-compile`` escape
            hatch).
        batch: Enable tensor-major batching of same-condition cells
            (results are bit-identical either way; the ``--no-batch``
            escape hatch).  Serial plans prewarm the shared context's
            hub-run cache with one batched execution per condition
            group before the per-cell loop.
        shape_batch: Enable shape-keyed batching of *different*
            conditions sharing one graph shape (results are
            bit-identical either way; the ``--no-shape-batch`` escape
            hatch).  Rides on the batched path, so it only matters
            when ``batch`` is on.

    The pool persists across calls: workers are forked once, each
    builds a warm :class:`RunContext` and receives every trace exactly
    once via the pool initializer (through shared memory when the
    platform supports it), and later calls with the same settings and
    traces dispatch only (config, app) pairs.  Cells are dispatched in
    trace-major batches so one IPC round trip covers a whole trace's
    cells.
    """
    n = len(plan.cells)
    if jobs <= 1:
        ctx = (
            context
            if context is not None
            else RunContext(
                cache=cache,
                fuse=fuse,
                compiled=compiled,
                batch=batch,
                shape_batch=shape_batch,
            )
        )
        indexed = _run_serial(plan, profile, ctx)
        info = ExecutionInfo(
            requested_jobs=jobs,
            mode="serial",
            workers=1,
            batches=0,
            pool_reused=False,
            reason="jobs<=1: serial execution requested",
            cache_stats=ctx.stats.as_dict(),
        )
        return indexed_results(indexed), info

    # Pool runs go through the caller's context pool when a context is
    # supplied (per-shard isolation in the serving tier), and through
    # the module default handle otherwise (so bare sweep calls still
    # share one warm pool across invocations).
    pool_handle = context.pool if context is not None else _DEFAULT_POOL
    groups = _group_cells_by_trace(plan.cells)
    workers = max(1, min(jobs, len(groups)))
    warm = pool_handle.is_warm(
        plan,
        jobs,
        cache=cache,
        fuse=fuse,
        compiled=compiled,
        batch=batch,
        shape_batch=shape_batch,
    )
    if n < MIN_POOL_CELLS and not warm:
        ctx = (
            context
            if context is not None
            else RunContext(
                cache=cache,
                fuse=fuse,
                compiled=compiled,
                batch=batch,
                shape_batch=shape_batch,
            )
        )
        indexed = _run_serial(plan, profile, ctx)
        info = ExecutionInfo(
            requested_jobs=jobs,
            mode="serial",
            workers=1,
            batches=0,
            pool_reused=False,
            reason=(
                f"plan of {n} cells is below the pool threshold "
                f"({MIN_POOL_CELLS}) and no warm pool exists"
            ),
            cache_stats=ctx.stats.as_dict(),
        )
        return indexed_results(indexed), info

    traces: List[Trace] = []
    for cell in plan.cells:
        if not traces or traces[-1] is not cell.trace:
            traces.append(cell.trace)
    pool, workers, reused = pool_handle.obtain(
        workers, cache, fuse, compiled, batch, shape_batch, traces
    )
    futures = [
        pool.submit(
            _run_batch,
            group[0].trace.name,
            [(cell.index, cell.config, cell.app) for cell in group],
            profile,
        )
        for group in groups
    ]
    indexed: List[Tuple[int, "SimulationResult"]] = []
    for future in futures:
        indexed.extend(future.result())
    indexed.sort(key=lambda pair: pair[0])
    info = ExecutionInfo(
        requested_jobs=jobs,
        mode="pool",
        workers=workers,
        batches=len(groups),
        pool_reused=reused,
        reason=(
            "warm persistent pool reused"
            if reused
            else f"plan of {n} cells over {len(groups)} trace batches "
            f"warrants a pool of {workers}"
        ),
    )
    return indexed_results(indexed), info


def indexed_results(
    indexed: List[Tuple[int, "SimulationResult"]]
) -> List["SimulationResult"]:
    """Strip indices after an order-restoring sort."""
    return [result for _, result in indexed]
