"""Concurrent multi-application simulation (paper Section 7).

"We would also like to explore supporting multiple concurrent
applications while still maintaining predictable performance.  When
receiving multiple wake-up conditions, the sensor manager can attempt
to improve performance by combining the pipelines that use common
algorithms."

:class:`ConcurrentSidewinder` simulates several applications sharing
one phone and one hub:

* every application's wake-up condition runs on the hub — optionally
  merged through :mod:`repro.hub.merge`, so common subcomputations
  execute once;
* the phone wakes for the *union* of all conditions' wake events (a
  wake-up serves every application whose data is buffered);
* each application's precise detector runs over the data visible around
  its own condition's wake-ups, preserving per-application recall and
  precision;
* the hub is charged once per distinct processor in use — concurrency's
  key saving: five MSP430 conditions still cost 3.6 mW, not 18.

The result quantifies the sharing effect the paper anticipates: total
power for N concurrent applications sits far below the sum of N
individual deployments (which would each pay their own phone).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.base import SensingApplication
from repro.errors import SimulationError
from repro.hub.fpga import HubProcessor, select_processor
from repro.hub.mcu import DEFAULT_CATALOG
from repro.hub.merge import MultiTapRuntime, merge_programs
from repro.hub.runtime import WakeEvent, split_into_rounds
from repro.il.validate import validate_program
from repro.power.accounting import account
from repro.power.phone import NEXUS4, PhonePowerProfile
from repro.power.timeline import build_timeline, merge_windows
from repro.sim.engine import RunContext
from repro.sim.results import SimulationResult
from repro.sim.simulator import (
    DEFAULT_RAW_BUFFER_S,
    TRIGGERED_HOLD_S,
    compile_app_condition,
    evaluate,
    extend_for_buffer,
    windows_from_wake_times,
)
from repro.traces.base import Trace


@dataclass(frozen=True)
class ConcurrentResult:
    """Outcome of running several applications on one device.

    Attributes:
        per_app: One :class:`~repro.sim.results.SimulationResult` per
            application, all sharing the same phone timeline and hub
            charge (their ``average_power_mw`` is the *device* power,
            identical across apps; recall/precision are per-app).
        shared_nodes: Hub algorithm instances saved by pipeline merging
            (0 when merging is disabled).
        hub_processors: Names of the distinct hub processors charged.
    """

    per_app: Tuple[SimulationResult, ...]
    shared_nodes: int
    hub_processors: Tuple[str, ...]

    @property
    def device_power_mw(self) -> float:
        """Average power of the shared device."""
        return self.per_app[0].average_power_mw if self.per_app else 0.0

    def result_for(self, app_name: str) -> SimulationResult:
        """The per-application result with the given name."""
        for result in self.per_app:
            if result.app_name == app_name:
                return result
        raise KeyError(app_name)


class ConcurrentSidewinder:
    """Run several applications' conditions on one shared hub + phone.

    Args:
        merge: Share common pipeline prefixes across conditions
            (the paper's future-work optimization).  With ``False`` each
            condition runs its own instances — useful as the ablation
            baseline.
        hold_s: Awake hold per wake-up.
        raw_buffer_s: Hub raw-data backfill visible to detectors.
        catalog: Hub processors available for placement.
    """

    name = "concurrent_sidewinder"

    def __init__(
        self,
        merge: bool = True,
        hold_s: float = TRIGGERED_HOLD_S,
        raw_buffer_s: float = DEFAULT_RAW_BUFFER_S,
        catalog: Sequence[HubProcessor] = DEFAULT_CATALOG,
    ):
        self.merge = merge
        self.hold_s = hold_s
        self.raw_buffer_s = raw_buffer_s
        self.catalog = tuple(catalog)

    def run(
        self,
        apps: Sequence[SensingApplication],
        trace: Trace,
        profile: PhonePowerProfile = NEXUS4,
        context: Optional[RunContext] = None,
    ) -> ConcurrentResult:
        """Simulate all ``apps`` concurrently over ``trace``."""
        if not apps:
            raise SimulationError("need at least one application")
        usable = [
            app for app in apps
            if all(channel in trace.data for channel in app.channels)
        ]
        if not usable:
            raise SimulationError(
                f"trace {trace.name!r} lacks the sensors of every given app"
            )

        programs = [
            compile_app_condition(app.build_wakeup_pipeline(), context).program
            for app in usable
        ]
        per_app_events, shared_nodes, processors = self._run_hub(
            usable, programs, trace, context
        )

        # The phone wakes for the union of all conditions' events.
        union_windows: List[Tuple[float, float]] = []
        for events in per_app_events:
            union_windows.extend(
                windows_from_wake_times(
                    [e.time for e in events], trace.duration, self.hold_s, profile
                )
            )
        union_windows = merge_windows(
            union_windows, min_gap=2.0 * profile.transition_s
        )
        timeline = build_timeline(trace.duration, union_windows, profile)
        hub_mw = sum(p.awake_power_mw for p in processors)

        results = []
        for app, events in zip(usable, per_app_events):
            own_windows = windows_from_wake_times(
                [e.time for e in events], trace.duration, self.hold_s, profile
            )
            visible = extend_for_buffer(own_windows, self.raw_buffer_s)
            if context is not None:
                detections = context.detections(app, trace, visible)
            else:
                detections = app.detect(trace, visible)
            result = evaluate(
                config_name=self.name,
                app=app,
                trace=trace,
                awake_windows=union_windows,
                detections=detections,
                profile=profile,
                hub_wake_count=len(events),
                context=context,
            )
            # Replace the power breakdown with the shared-hub charge.
            results.append(
                SimulationResult(
                    config_name=result.config_name,
                    app_name=result.app_name,
                    trace_name=result.trace_name,
                    timeline=timeline,
                    power=account(timeline, profile, hub_mw=hub_mw),
                    detections=result.detections,
                    recall=result.recall,
                    precision=result.precision,
                    hub_wake_count=len(events),
                    mcu_names=tuple(p.name for p in processors),
                )
            )
        return ConcurrentResult(
            per_app=tuple(results),
            shared_nodes=shared_nodes,
            hub_processors=tuple(p.name for p in processors),
        )

    # -- hub execution -------------------------------------------------

    def _run_hub(
        self,
        apps: Sequence[SensingApplication],
        programs: Sequence,
        trace: Trace,
        context: Optional[RunContext] = None,
    ) -> Tuple[List[List[WakeEvent]], int, List[HubProcessor]]:
        processors: Dict[str, HubProcessor] = {}
        validated = (
            context.validated if context is not None else validate_program
        )
        if self.merge:
            merged = merge_programs(programs)
            runtime = MultiTapRuntime(merged)
            arrays = (
                context.channel_arrays(trace) if context is not None
                else trace.channel_arrays()
            )
            channels = {
                name: triple
                for name, triple in arrays.items()
                if name in runtime.graph.channels
            }
            events_by_tap = runtime.run(split_into_rounds(channels))
            per_app = [list(events_by_tap[tap]) for tap in merged.taps]
            # Place the merged graph: each original condition still
            # determines its own processor class (the merged subgraph a
            # condition needs is what must fit), so we place per
            # condition and charge distinct processors once.
            for program in programs:
                processor = select_processor(validated(program), self.catalog)
                processors[processor.name] = processor
            return per_app, merged.shared_nodes, list(processors.values())

        from repro.sim.simulator import run_wakeup_condition

        per_app = []
        for program in programs:
            graph = validated(program)
            processor = select_processor(graph, self.catalog)
            processors[processor.name] = processor
            per_app.append(run_wakeup_condition(graph, trace, context=context))
        return per_app, 0, list(processors.values())
