"""Trace-driven simulator (paper Section 4).

"Our evaluation is based on a trace-driven simulation.  We measured
power usage for our hardware to create a power model and collected
accelerometer and audio traces.  This data was fed into our simulator
which modeled the behavior and power consumption of our devices under
various configurations and applications."

:mod:`repro.sim.simulator` provides the shared machinery (wake-up
condition execution, awake-window policies, result assembly);
:mod:`repro.sim.configs` provides the six sensing configurations of
Section 4.2; :mod:`repro.sim.calibrate` provides the threshold sweeps
used to give Predefined Activity its best-case parameters (Section 5.3).
"""

from repro.sim.adaptive import AdaptiveSidewinder, EpochReport, ThresholdTuner
from repro.sim.concurrent import ConcurrentResult, ConcurrentSidewinder
from repro.sim.engine import (
    CacheStats,
    RunCell,
    RunContext,
    RunPlan,
    SkippedCell,
    execute_plan,
    plan_matrix,
    program_fingerprint,
)
from repro.sim.configs import (
    AlwaysAwake,
    Batching,
    DutyCycling,
    Oracle,
    PredefinedActivity,
    Sidewinder,
)
from repro.sim.recovery import (
    FaultReport,
    FaultyRun,
    WakeDelivery,
    run_condition_under_faults,
)
from repro.sim.results import SimulationResult
from repro.sim.simulator import (
    evaluate,
    faulty_condition_windows,
    run_wakeup_condition,
    windows_from_wake_times,
)

__all__ = [
    "AdaptiveSidewinder",
    "AlwaysAwake",
    "CacheStats",
    "ConcurrentResult",
    "ConcurrentSidewinder",
    "EpochReport",
    "FaultReport",
    "FaultyRun",
    "ThresholdTuner",
    "Batching",
    "DutyCycling",
    "Oracle",
    "PredefinedActivity",
    "RunCell",
    "RunContext",
    "RunPlan",
    "Sidewinder",
    "SimulationResult",
    "SkippedCell",
    "WakeDelivery",
    "evaluate",
    "execute_plan",
    "faulty_condition_windows",
    "plan_matrix",
    "program_fingerprint",
    "run_condition_under_faults",
    "run_wakeup_condition",
    "windows_from_wake_times",
]
