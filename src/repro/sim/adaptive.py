"""Self-tuning wake-up conditions (paper Section 7, future work).

"Given feedback from the more complex algorithms running on the
application level, self-learning mechanisms may be able to tune the
parameters used on the wake-up conditions.  It is easy to imagine an
application notifying the sensor hub about wake-ups when events of
interest were not actually detected (i.e. false positives).  However,
it will be more difficult to automatically identify events of interest
missed by the wake-up condition (i.e. false negatives)."

This module implements exactly that loop, honouring the asymmetry the
paper points out:

* after each adaptation epoch the application reports, per wake-up,
  whether the precise detector confirmed an event (true positive) or
  rejected it (false positive);
* the tuner tightens the condition's final admission threshold toward
  eliminating false positives — but **never past the safety bound**
  derived from the trigger values of confirmed events (with a
  configurable margin), because a missed event could not be reported;
* with no confirmed events in an epoch there is no safety evidence, so
  the tuner holds still.

The tuning operates at the intermediate-language level: the sensor
manager rewrites the threshold parameter of the condition's output
statement and re-pushes it, which works for any pipeline ending in a
``minThreshold`` or ``maxThreshold`` admission stage — no application
code changes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.apps.base import SensingApplication
from repro.errors import SimulationError
from repro.hub.feasibility import select_mcu
from repro.hub.mcu import DEFAULT_CATALOG
from repro.il.ast import ILProgram, ILStatement
from repro.il.validate import validate_program
from repro.power.phone import NEXUS4, PhonePowerProfile
from repro.sim.configs.base import SensingConfiguration
from repro.sim.engine import RunContext
from repro.sim.results import SimulationResult
from repro.sim.simulator import (
    TRIGGERED_HOLD_S,
    compile_app_condition,
    evaluate,
    extend_for_buffer,
    run_wakeup_condition,
    windows_from_wake_times,
)
from repro.traces.base import Trace

#: Opcodes whose ``threshold`` parameter the tuner knows how to adjust,
#: with the direction that makes the condition stricter.
_TUNABLE = {"minThreshold": +1.0, "maxThreshold": -1.0}


@dataclass(frozen=True)
class EpochReport:
    """What the tuner saw and did in one adaptation epoch.

    Attributes:
        epoch: Epoch index (0-based).
        threshold: Threshold in force during the epoch.
        wake_events: Hub wake events in the epoch.
        true_positives: Wake events confirmed by the precise detector.
        false_positives: Wake events the detector rejected.
        new_threshold: Threshold chosen for the next epoch.
    """

    epoch: int
    threshold: float
    wake_events: int
    true_positives: int
    false_positives: int
    new_threshold: float

    @property
    def false_positive_rate(self) -> float:
        """Fraction of the epoch's wake events that were spurious."""
        if self.wake_events == 0:
            return 0.0
        return self.false_positives / self.wake_events


def _find_tunable_output(program: ILProgram) -> Tuple[ILStatement, float]:
    statement = program.statement_by_id()[program.output.node_id]
    direction = _TUNABLE.get(statement.opcode)
    if direction is None:
        raise SimulationError(
            f"adaptive tuning needs the condition to end in one of "
            f"{sorted(_TUNABLE)}; got {statement.opcode!r}"
        )
    return statement, direction


def _with_threshold(program: ILProgram, threshold: float) -> ILProgram:
    statement, _ = _find_tunable_output(program)
    params = dict(statement.params)
    params["threshold"] = threshold
    new_statement = ILStatement.make(
        statement.inputs, statement.opcode, statement.node_id, params
    )
    statements = tuple(
        new_statement if s.node_id == statement.node_id else s
        for s in program.statements
    )
    return ILProgram(statements, program.output)


class ThresholdTuner:
    """The epoch-by-epoch threshold adjustment policy.

    Args:
        initial_threshold: Starting (conservative) threshold.
        direction: +1 when raising the threshold makes the condition
            stricter (``minThreshold``), -1 for ``maxThreshold``.
        safety_margin: Fraction of the gap between the threshold and the
            weakest confirmed trigger value that must remain as slack —
            the insurance against unreportable false negatives.
        step_fraction: How far toward the safety bound one epoch may
            move (smaller = more cautious adaptation).
        target_fp_rate: False-positive rate below which the tuner stops
            tightening.
    """

    def __init__(
        self,
        initial_threshold: float,
        direction: float,
        safety_margin: float = 0.25,
        step_fraction: float = 0.5,
        target_fp_rate: float = 0.05,
    ):
        if not 0.0 <= safety_margin < 1.0:
            raise SimulationError("safety_margin must be in [0, 1)")
        if not 0.0 < step_fraction <= 1.0:
            raise SimulationError("step_fraction must be in (0, 1]")
        self.threshold = initial_threshold
        self.direction = direction
        self.safety_margin = safety_margin
        self.step_fraction = step_fraction
        self.target_fp_rate = target_fp_rate

    def update(
        self,
        true_positive_values: List[float],
        false_positive_values: List[float],
    ) -> float:
        """Consume one epoch's feedback; return the next threshold.

        Trigger values are the stream values that reached OUT.  The
        next threshold never crosses the safety bound: the weakest
        confirmed trigger, backed off by ``safety_margin`` of its gap
        from the current threshold.
        """
        wake_count = len(true_positive_values) + len(false_positive_values)
        if wake_count == 0 or not true_positive_values:
            return self.threshold  # no evidence: hold still
        fp_rate = len(false_positive_values) / wake_count
        if fp_rate <= self.target_fp_rate:
            return self.threshold
        if self.direction > 0:
            weakest_tp = min(true_positive_values)
            bound = self.threshold + (1.0 - self.safety_margin) * (
                weakest_tp - self.threshold
            )
            candidate = self.threshold + self.step_fraction * (
                bound - self.threshold
            )
            self.threshold = max(self.threshold, min(candidate, bound))
        else:
            weakest_tp = max(true_positive_values)
            bound = self.threshold + (1.0 - self.safety_margin) * (
                weakest_tp - self.threshold
            )
            candidate = self.threshold + self.step_fraction * (
                bound - self.threshold
            )
            self.threshold = min(self.threshold, max(candidate, bound))
        return self.threshold


class AdaptiveSidewinder(SensingConfiguration):
    """Sidewinder with epoch-wise threshold self-tuning.

    Splits the trace into ``epochs`` equal slices; each slice runs the
    condition at the current threshold, collects application feedback,
    and lets the :class:`ThresholdTuner` pick the next threshold.  The
    returned :class:`~repro.sim.results.SimulationResult` covers the
    whole trace (all epochs' awake windows and detections combined);
    :attr:`last_reports` exposes the adaptation trajectory.
    """

    name = "adaptive_sidewinder"

    def __init__(
        self,
        epochs: int = 4,
        hold_s: float = TRIGGERED_HOLD_S,
        safety_margin: float = 0.25,
        step_fraction: float = 0.5,
        target_fp_rate: float = 0.05,
        catalog=DEFAULT_CATALOG,
    ):
        if epochs < 1:
            raise SimulationError("need at least one epoch")
        self.epochs = epochs
        self.hold_s = hold_s
        self.safety_margin = safety_margin
        self.step_fraction = step_fraction
        self.target_fp_rate = target_fp_rate
        self.catalog = tuple(catalog)
        self.last_reports: Tuple[EpochReport, ...] = ()

    def run(
        self,
        app: SensingApplication,
        trace: Trace,
        profile: PhonePowerProfile = NEXUS4,
        context: Optional[RunContext] = None,
    ) -> SimulationResult:
        base_program = compile_app_condition(
            app.build_wakeup_pipeline(), context
        ).program
        statement, direction = _find_tunable_output(base_program)
        tuner = ThresholdTuner(
            initial_threshold=float(statement.param_dict()["threshold"]),
            direction=direction,
            safety_margin=self.safety_margin,
            step_fraction=self.step_fraction,
            target_fp_rate=self.target_fp_rate,
        )

        epoch_length = trace.duration / self.epochs
        all_windows: List[Tuple[float, float]] = []
        all_detections = []
        reports: List[EpochReport] = []
        total_wakes = 0
        validated = (
            context.validated if context is not None else validate_program
        )
        mcu = select_mcu(validated(base_program), self.catalog)

        for epoch in range(self.epochs):
            start = epoch * epoch_length
            end = min((epoch + 1) * epoch_length, trace.duration)
            threshold = tuner.threshold
            piece = trace.slice(start, end)
            # Compiled graphs are shared through the context (the
            # initial-threshold condition recurs across traces), but
            # each epoch's hub run stays uncached: every slice is a
            # fresh trace object, so caching it could never hit.
            program = _with_threshold(base_program, threshold)
            graph = validated(program)
            wake_events = run_wakeup_condition(graph, piece)
            total_wakes += len(wake_events)
            windows = windows_from_wake_times(
                [w.time for w in wake_events], piece.duration, self.hold_s, profile
            )
            detections = app.detect(piece, extend_for_buffer(windows))
            # Application feedback: a wake event is confirmed when a
            # detection lies within its hold window (+ tolerance).
            tp_values, fp_values = [], []
            for event in wake_events:
                confirmed = any(
                    event.time - app.match_tolerance_s
                    <= d.span[1]
                    and d.span[0]
                    <= event.time + self.hold_s + app.match_tolerance_s
                    for d in detections
                )
                (tp_values if confirmed else fp_values).append(event.value)
            new_threshold = tuner.update(tp_values, fp_values)
            reports.append(
                EpochReport(
                    epoch=epoch,
                    threshold=threshold,
                    wake_events=len(wake_events),
                    true_positives=len(tp_values),
                    false_positives=len(fp_values),
                    new_threshold=new_threshold,
                )
            )
            all_windows.extend((start + a, start + b) for a, b in windows)
            all_detections.extend(
                replace(d, time=start + d.time, end=None if d.end is None else start + d.end)
                for d in detections
            )

        self.last_reports = tuple(reports)
        return evaluate(
            config_name=self.name,
            app=app,
            trace=trace,
            awake_windows=all_windows,
            detections=all_detections,
            mcus=(mcu,),
            profile=profile,
            hub_wake_count=total_wakes,
            context=context,
        )
