"""Hub-side sensor data processing algorithms (paper Section 3.6).

These are the "common sensor data processing algorithms" the platform
ships: windowing, transforms, data filtering, feature extraction and
admission control.  Application developers never implement these — they
parameterize and chain them through the :mod:`repro.api` stubs; the hub
runtime (:mod:`repro.hub`) instantiates the classes here to execute a
wake-up condition.

Every algorithm is a :class:`~repro.algorithms.base.StreamAlgorithm`
registered under an intermediate-language opcode (e.g. ``movingAvg``,
``fft``, ``minThreshold``).
"""

from repro.algorithms.base import (
    PORT_VARIADIC,
    StreamAlgorithm,
    available_opcodes,
    create,
    get_algorithm_class,
    register,
)
from repro.algorithms.admission import (
    BandIndicator,
    MaxThreshold,
    MinThreshold,
    RangeThreshold,
    SustainedThreshold,
)
from repro.algorithms.aggregate import MaxOf, MeanOf, MinOf, SumOf
from repro.algorithms.features import DominantFrequency, VectorMagnitude, ZeroCrossingRate
from repro.algorithms.filters import (
    ExponentialMovingAverage,
    HighPassFilter,
    LowPassFilter,
    MovingAverage,
)
from repro.algorithms.peaks import LocalExtrema
from repro.algorithms.statistics import Statistic
from repro.algorithms.transforms import FFT, IFFT
from repro.algorithms.windowing import Window

__all__ = [
    "FFT",
    "IFFT",
    "PORT_VARIADIC",
    "BandIndicator",
    "DominantFrequency",
    "ExponentialMovingAverage",
    "HighPassFilter",
    "LocalExtrema",
    "LowPassFilter",
    "MaxOf",
    "MaxThreshold",
    "MeanOf",
    "MinOf",
    "MinThreshold",
    "MovingAverage",
    "RangeThreshold",
    "SumOf",
    "Statistic",
    "StreamAlgorithm",
    "SustainedThreshold",
    "VectorMagnitude",
    "Window",
    "ZeroCrossingRate",
    "available_opcodes",
    "create",
    "get_algorithm_class",
    "register",
]
