"""Transform algorithms: FFT and inverse FFT (paper Section 3.6).

Frames enter the frequency domain through :class:`FFT` (producing a
one-sided complex spectrum) and can return to the time domain through
:class:`IFFT`.  FFT-based algorithms are the ones the paper found the
low-power MSP430 could *not* run in real time, which the cycle-cost model
here reflects.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.algorithms.base import StreamAlgorithm, StreamShape, register
from repro.sensors.samples import BatchedChunk, Chunk, StreamKind

#: Cycle cost multiplier for a software FFT butterfly on an MCU without
#: an FPU.  Chosen so that an 8 kHz audio pipeline with 512-point FFTs
#: exceeds the MSP430's real-time budget while 50 Hz accelerometer
#: pipelines remain comfortably feasible (matches Section 4).
FFT_CYCLES_PER_BUTTERFLY = 60.0


def fft_cycles(width: int) -> float:
    """Approximate MCU cycles to transform one ``width``-sample frame."""
    if width <= 1:
        return FFT_CYCLES_PER_BUTTERFLY
    return FFT_CYCLES_PER_BUTTERFLY * width * math.log2(width)


@register("fft")
class FFT(StreamAlgorithm):
    """Fast Fourier Transform: time-domain frame to one-sided spectrum."""

    n_inputs = 1
    input_kind = StreamKind.FRAME
    output_kind = StreamKind.SPECTRUM
    chunk_invariant = True
    incremental = True
    param_order = ()

    def process(self, chunks: Sequence[Chunk]) -> Chunk:
        (chunk,) = chunks
        if chunk.is_empty:
            return Chunk.empty(StreamKind.SPECTRUM, chunk.rate_hz, 0)
        spectra = np.fft.rfft(chunk.values, axis=1)
        return Chunk(StreamKind.SPECTRUM, chunk.times, spectra, chunk.rate_hz)

    def lower(self, chunks: Sequence[Chunk]) -> Chunk:
        """Stateless per-frame transform: the whole trace is one process call."""
        return self.process(chunks)

    def lower_batched(self, batches: Sequence[BatchedChunk]) -> BatchedChunk:
        """Itemwise: each item transforms independently, so the batch
        axis folds into the item axis (padding items are zeros)."""
        return self._lower_batched_itemwise(batches)

    def propagate_shape(self, in_shapes: Sequence[StreamShape]) -> StreamShape:
        first = in_shapes[0]
        return StreamShape(
            StreamKind.SPECTRUM,
            first.items_per_second,
            first.width // 2 + 1,
            first.rate_hz,
        )

    def cycles_per_item(self, in_shapes: Sequence[StreamShape]) -> float:
        return fft_cycles(in_shapes[0].width)


@register("ifft")
class IFFT(StreamAlgorithm):
    """Inverse FFT: one-sided spectrum back to a time-domain frame."""

    n_inputs = 1
    input_kind = StreamKind.SPECTRUM
    output_kind = StreamKind.FRAME
    chunk_invariant = True
    incremental = True
    param_order = ()

    def process(self, chunks: Sequence[Chunk]) -> Chunk:
        (chunk,) = chunks
        if chunk.is_empty:
            return Chunk.empty(StreamKind.FRAME, chunk.rate_hz, 0)
        frames = np.fft.irfft(chunk.values, axis=1)
        return Chunk(StreamKind.FRAME, chunk.times, frames, chunk.rate_hz)

    def lower(self, chunks: Sequence[Chunk]) -> Chunk:
        """Stateless per-spectrum transform: the whole trace is one process call."""
        return self.process(chunks)

    def lower_batched(self, batches: Sequence[BatchedChunk]) -> BatchedChunk:
        """Itemwise: each item transforms independently, so the batch
        axis folds into the item axis (padding items are zeros)."""
        return self._lower_batched_itemwise(batches)

    def propagate_shape(self, in_shapes: Sequence[StreamShape]) -> StreamShape:
        first = in_shapes[0]
        width = max(2 * (first.width - 1), 1)
        return StreamShape(StreamKind.FRAME, first.items_per_second, width, first.rate_hz)

    def cycles_per_item(self, in_shapes: Sequence[StreamShape]) -> float:
        return fft_cycles(max(2 * (in_shapes[0].width - 1), 1))
