"""Windowing algorithms: partition a scalar stream into frames.

Paper Section 3.6: "Windowing — partitioning sensor data into rectangular
or Hamming windows."
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.algorithms.base import StreamAlgorithm, StreamShape, register
from repro.errors import ParameterError
from repro.sensors.samples import BatchedChunk, Chunk, ChunkBuffer, StreamKind

#: Supported window shapes.
WINDOW_SHAPES = ("rectangular", "hamming")


@register("window")
class Window(StreamAlgorithm):
    """Partition a scalar stream into fixed-size frames.

    Parameters:
        size: Samples per frame.
        hop: Samples to advance between frames; defaults to ``size``
            (non-overlapping).  ``hop < size`` gives overlapping frames.
        shape: ``"rectangular"`` (default) or ``"hamming"``.  A Hamming
            window tapers each frame, reducing FFT spectral leakage.

    Emits one FRAME item each time ``hop`` new samples have arrived and
    at least ``size`` samples are buffered.  The frame's timestamp is the
    time of its last sample.
    """

    n_inputs = 1
    input_kind = StreamKind.SCALAR
    output_kind = StreamKind.FRAME
    # Frames are cut at absolute sample offsets held in the carry
    # buffer, so the emitted frame sequence never depends on chunking.
    chunk_invariant = True
    incremental = True
    param_order = ("size", "hop", "shape")

    def __init__(self, size: int, hop: int | None = None, shape: str = "rectangular"):
        super().__init__(size=size, hop=hop, shape=shape)
        self.size = self._require_positive_int("size", size)
        self.hop = self._require_positive_int("hop", hop if hop is not None else self.size)
        if shape not in WINDOW_SHAPES:
            raise ParameterError(f"window: shape must be one of {WINDOW_SHAPES}, got {shape!r}")
        self.shape = shape
        self._taper = np.hamming(self.size) if shape == "hamming" else None
        self._buffer = ChunkBuffer()

    def process(self, chunks: Sequence[Chunk]) -> Chunk:
        (chunk,) = chunks
        self._buffer.extend(chunk)
        n = len(self._buffer)
        if n < self.size:
            return Chunk.empty(StreamKind.FRAME, chunk.rate_hz, self.size)
        n_frames = (n - self.size) // self.hop + 1
        starts = np.arange(n_frames) * self.hop
        idx = starts[:, None] + np.arange(self.size)[None, :]
        frames = self._buffer.values[idx]
        if self._taper is not None:
            frames = frames * self._taper
        times = self._buffer.times[starts + self.size - 1]
        self._buffer.consume(int(starts[-1] + self.hop))
        return Chunk(StreamKind.FRAME, times, frames, chunk.rate_hz)

    def lower(self, chunks: Sequence[Chunk]) -> Chunk:
        """Whole-trace framing: every frame is cut in one fancy-index pass.

        Frames start at absolute offsets ``0, hop, 2*hop, ...`` from the
        first sample, exactly as the streaming carry buffer would cut
        them, so the buffer state collapses away entirely.
        """
        (chunk,) = chunks
        n = len(chunk)
        if n < self.size:
            return Chunk.empty(StreamKind.FRAME, chunk.rate_hz, self.size)
        n_frames = (n - self.size) // self.hop + 1
        starts = np.arange(n_frames) * self.hop
        idx = starts[:, None] + np.arange(self.size)[None, :]
        frames = chunk.values[idx]
        if self._taper is not None:
            frames = frames * self._taper
        times = chunk.times[starts + self.size - 1]
        return Chunk(StreamKind.FRAME, times, frames, chunk.rate_hz)

    def lower_batched(self, batches: Sequence[BatchedChunk]) -> BatchedChunk:
        """Per-row framing in one 3-D fancy-index pass.

        Every row cuts frames at the same absolute offsets ``0, hop,
        2*hop, ...``; a row's frame is valid only while it fits inside
        the row's own length, so short rows just expose fewer frames.
        Gathered elements and the taper multiply are the identical
        float operations the per-trace rule applies.
        """
        (batch,) = batches
        rows = batch.batch_size
        if batch.n_max < self.size:
            return BatchedChunk.view(
                StreamKind.FRAME,
                np.zeros((rows, 0)),
                np.zeros((rows, 0, self.size)),
                np.zeros(rows, dtype=np.int64),
                batch.rate_hz,
            )
        n_frames = (batch.n_max - self.size) // self.hop + 1
        starts = np.arange(n_frames) * self.hop
        idx = starts[:, None] + np.arange(self.size)[None, :]
        frames = batch.values[:, idx]
        if self._taper is not None:
            frames = frames * self._taper
        times = batch.times[:, starts + self.size - 1]
        lengths = np.where(
            batch.lengths >= self.size,
            (batch.lengths - self.size) // self.hop + 1,
            0,
        )
        return BatchedChunk.view(
            StreamKind.FRAME, times, frames, lengths, batch.rate_hz
        )

    def reset(self) -> None:
        self._buffer.clear()

    def incremental_ineligibility(self) -> str | None:
        if self.hop > self.size:
            return (
                "window hop exceeds size (samples between frames are "
                "discarded, which bounded replay cannot express)"
            )
        return None

    def incremental_retention(self, merged: Chunk, seen: int) -> int:
        """Samples past the start of the next uncut frame.

        With ``seen`` samples consumed, ``(seen - size) // hop + 1``
        frames have been emitted and the next frame starts at that count
        times ``hop``; everything from there on must replay.  The result
        is always below ``size`` (no retained frame re-emits) because
        ``hop <= size`` is guaranteed by :meth:`incremental_ineligibility`.
        """
        if seen < self.size:
            return seen
        return (seen - self.size) % self.hop + self.size - self.hop

    def propagate_shape(self, in_shapes: Sequence[StreamShape]) -> StreamShape:
        first = in_shapes[0]
        return StreamShape(
            StreamKind.FRAME,
            first.items_per_second / self.hop,
            self.size,
            first.rate_hz,
        )

    def cycles_per_item(self, in_shapes: Sequence[StreamShape]) -> float:
        # Per input sample: a buffer store, plus (for Hamming) one
        # multiply per sample when the frame is emitted, amortized.
        copy_cost = 4.0
        taper_cost = 6.0 * (self.size / self.hop) if self.shape == "hamming" else 0.0
        return copy_cost + taper_cost
