"""Base class and opcode registry for hub processing algorithms.

The hub runtime executes a wake-up condition as a dataflow graph whose
nodes are :class:`StreamAlgorithm` instances.  Each concrete algorithm:

* declares how many input streams it accepts and which
  :class:`~repro.sensors.samples.StreamKind` it consumes and produces,
  so the IL validator can type-check a pipeline before it is pushed;
* implements :meth:`process`, transforming one aligned set of input
  chunks into one output chunk (possibly empty — the paper's
  ``hasResult`` flag generalizes to "the output chunk may hold fewer
  items than the input");
* exposes a coarse cycle-cost model used by the MCU feasibility analysis
  (Section 4: the MSP430 cannot run FFT-based filters in real time).

Registration::

    @register("movingAvg")
    class MovingAverage(StreamAlgorithm):
        ...

makes the opcode available both to the IL parser/compiler and to the hub
runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

from repro.errors import ParameterError, UnknownAlgorithmError
from repro.sensors.samples import BatchedChunk, Chunk, StreamKind

#: Sentinel for algorithms accepting any number of inputs >= 1
#: (e.g. vector magnitude).
PORT_VARIADIC = -1


@dataclass(frozen=True)
class StreamShape:
    """Static description of a stream edge, used by feasibility analysis.

    Attributes:
        kind: Item kind on the edge.
        items_per_second: Upper bound on item rate.
        width: Number of samples per item (1 for scalars).
        rate_hz: Sampling rate of the underlying time-domain signal.
    """

    kind: StreamKind
    items_per_second: float
    width: int
    rate_hz: float


class StreamAlgorithm:
    """One node of a wake-up condition dataflow graph.

    Subclasses set the class attributes and implement :meth:`process`.

    Class attributes:
        opcode: Intermediate-language name (set by :func:`register`).
        n_inputs: Number of input streams, or :data:`PORT_VARIADIC`.
        input_kind: Stream kind required on every input.
        output_kind: Stream kind produced.
        chunk_invariant: True when the concatenated output stream is
            *bitwise* independent of how the input stream is split into
            chunks.  The fused execution path
            (:meth:`repro.hub.runtime.HubRuntime.run_fused`) relies on
            this to replace many small feed rounds with a few large
            ones while producing identical wake events; an algorithm
            whose numerical result can drift with chunk size — even at
            ulp level — must leave this False.  Defaults to False so
            new algorithms opt in explicitly.
    """

    opcode: str = ""
    n_inputs: int = 1
    input_kind: StreamKind = StreamKind.SCALAR
    output_kind: StreamKind = StreamKind.SCALAR
    chunk_invariant: bool = False
    #: True when the opcode's ``lower`` rule supports *bounded-replay
    #: incremental* execution (streaming ingestion): the executor keeps
    #: a retained trailing-input buffer ``R`` sized by
    #: :meth:`incremental_retention` such that ``lower(R)`` emits
    #: nothing and ``lower(R ++ new_span)`` emits exactly the
    #: never-before-emitted output items.  Opt-in like
    #: ``chunk_invariant``: an opcode must only set this after checking
    #: the replay contract holds bit-exactly for its rule.
    incremental: bool = False
    #: Parameters the shape-batched path may vary *per row*.  An opcode
    #: that overrides :meth:`lower_batched_rows` lists here exactly the
    #: parameter names its row kernel lifts into ``(B,)`` tensors; every
    #: other parameter stays structural (rows must agree on it to share
    #: a shape batch).  Empty means "no row lowering": heterogeneous
    #: rows fall back to a per-row ``lower`` loop for this node.
    row_params: Tuple[str, ...] = ()

    def __init__(self, **params: Any):
        self.params = params

    # -- execution ---------------------------------------------------

    def process(self, chunks: Sequence[Chunk]) -> Chunk:
        """Consume one aligned chunk per input port, produce one chunk.

        The returned chunk may be empty or shorter than the input when
        the algorithm is not ready to emit (window not yet full,
        threshold not met, ...).
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Discard internal state, returning to the just-constructed state."""

    # -- compilation -------------------------------------------------

    def lower(self, chunks: Sequence[Chunk]) -> Chunk:
        """Whole-trace lowering rule for the hub compiler.

        Transforms one whole-trace chunk per input port into the node's
        whole-trace output in a single vectorized pass — the compiled
        counterpart of :meth:`process`.  A lowering rule must be a
        *pure* function: it may not read or mutate instance state (any
        carried state collapses to its cold-start value, because the
        compiled program always covers the trace from the beginning),
        and its output must be bit-identical to feeding a freshly
        constructed instance the same data as one ``process`` call.
        Together with ``chunk_invariant`` this makes the compiled path
        (:mod:`repro.hub.compile`) exactly equivalent to the
        interpreter at any chunking.

        The base implementation signals "no lowering rule": the
        compiler's eligibility check
        (:func:`repro.hub.compile.compile_eligibility`) reports such
        nodes by name instead of calling this.
        """
        raise NotImplementedError(
            f"{self.opcode or type(self).__name__} has no lowering rule"
        )

    def lower_batched(self, batches: Sequence[BatchedChunk]) -> BatchedChunk:
        """Batched lowering rule: one whole-trace pass over *B* traces.

        Consumes one :class:`~repro.sensors.samples.BatchedChunk` per
        input port (all ports share the batch axis) and produces the
        node's batched output.  The contract is row-wise bit-identity:
        row ``b`` of the result must equal ``lower`` applied to row
        ``b`` of every input — padding may hold anything, but valid
        prefixes are exact.

        The base implementation loops ``lower`` over the rows and
        re-stacks, which is always correct (lowering rules are pure)
        and is what FFT-bearing frame ops keep: numpy's pocketfft is
        only guaranteed bitwise reproducible per 1-D transform, and a
        per-row loop sidesteps any question of batched reassociation.
        Scalar ops whose padding behaves (elementwise maps, prefix
        scans) override this with genuinely vectorized versions.
        """
        return BatchedChunk.from_rows(
            [
                self.lower([batch.row(b) for batch in batches])
                for b in range(batches[0].batch_size)
            ]
        )

    def lower_batched_rows(
        self,
        batches: Sequence[BatchedChunk],
        row_values: Dict[str, "np.ndarray"],
    ) -> BatchedChunk:
        """Shape-batched lowering: per-row parameter tensors.

        Like :meth:`lower_batched`, but the parameters named in
        :attr:`row_params` arrive as ``(B,)`` arrays in ``row_values``
        (row ``b`` holds row ``b``'s own parameter value) instead of as
        scalars on ``self``.  The contract is the same row-wise
        bit-identity: row ``b`` of the result must equal
        ``lower_batched`` on an instance constructed with row ``b``'s
        parameters — broadcasting a per-row scalar down a row is the
        same elementwise float operation as broadcasting a Python
        scalar over the row, so overrides get this for free.

        The method is invoked on an *arbitrary* row's instance (the
        shape-batched plan holds one plan per row); an override MUST
        read the lifted parameters only from ``row_values``, never from
        ``self``.  Structural parameters (everything not in
        ``row_params``) are guaranteed equal across the batch and may
        be read from ``self`` as usual.

        The base implementation signals "no row lowering" — the
        shape-batched executor detects that via :func:`has_row_lowering`
        and falls back to a per-row ``lower`` loop for the node.
        """
        raise NotImplementedError(
            f"{self.opcode or type(self).__name__} has no row lowering rule"
        )

    def _lower_batched_itemwise(
        self, batches: Sequence[BatchedChunk]
    ) -> BatchedChunk:
        """Batched lowering for per-item maps (output count == input count).

        Flattens the batch axis into the item axis, runs the node's
        ordinary :meth:`lower` once over the ``B·n_max`` flattened
        items, and folds the result back to ``(B, n_max, ...)``.  Valid
        for any *itemwise* rule — one output item per input item, each
        depending only on its own item — because then the flattened
        pass applies the identical float operations to every valid
        element as the per-row pass, and padding items merely compute
        garbage that stays masked behind ``lengths``.
        """
        first = batches[0]
        rows, width = first.times.shape[0], first.times.shape[1]
        flat = [
            Chunk.view(
                batch.kind,
                batch.times.reshape(rows * width),
                batch.values.reshape((rows * width,) + batch.values.shape[2:]),
                batch.rate_hz,
            )
            for batch in batches
        ]
        out = self.lower(flat)
        if len(out) != rows * width:
            raise ValueError(
                f"{self.opcode}: itemwise batching expected {rows * width} "
                f"items, got {len(out)}"
            )
        return BatchedChunk.view(
            out.kind,
            out.times.reshape(rows, width),
            out.values.reshape((rows, width) + out.values.shape[1:]),
            first.lengths,
            out.rate_hz,
        )

    # -- incremental (streaming) execution ---------------------------

    def incremental_retention(self, merged: Chunk, seen: int) -> int:
        """Trailing input items to retain for the next incremental round.

        Called after ``lower(merged)`` ran, where ``merged`` is the
        retained buffer plus the round's new span and ``seen`` is the
        total number of items this port has consumed since the stream
        started.  The returned count ``r`` (items off the end of
        ``merged``) must satisfy the bounded-replay contract: running
        ``lower`` on those ``r`` items alone emits nothing, and running
        it on them plus any future span emits exactly the output items
        that whole-trace ``lower`` would emit beyond what has already
        been emitted — bit for bit.  The default (0) is correct for
        stateless itemwise rules; windowed/stateful opcodes override it.
        """
        return 0

    def incremental_ineligibility(self) -> Optional[str]:
        """Why *this instance* cannot run incrementally, or None.

        Some opcodes are incremental only for part of their parameter
        space (e.g. a window whose hop exceeds its size discards
        samples between frames, which bounded replay cannot express).
        Instances outside that space return a human-readable reason and
        the streaming executor falls back to a persistent interpreter.
        """
        return None

    # -- static analysis ---------------------------------------------

    def propagate_shape(self, in_shapes: Sequence[StreamShape]) -> StreamShape:
        """Compute the output stream shape from the input shapes.

        The default implementation passes the first input through
        unchanged except for the declared output kind, which is correct
        for element-wise scalar algorithms.
        """
        first = in_shapes[0]
        return StreamShape(self.output_kind, first.items_per_second, first.width, first.rate_hz)

    def cycles_per_item(self, in_shapes: Sequence[StreamShape]) -> float:
        """Approximate MCU cycles consumed per *input* item.

        The constants are coarse but ranked realistically: element-wise
        ops are a few cycles, windowed statistics are linear in window
        width, FFTs are ``O(w log w)`` with a large constant (software
        FFT on an MCU without a floating-point unit).
        """
        return 8.0

    # -- parameter helpers -------------------------------------------

    def _require_positive_int(self, name: str, value: Any) -> int:
        value = _as_int(name, value)
        if value <= 0:
            raise ParameterError(f"{self.opcode}: {name} must be positive, got {value}")
        return value

    def _require_float(self, name: str, value: Any) -> float:
        try:
            return float(value)
        except (TypeError, ValueError):
            raise ParameterError(
                f"{self.opcode}: {name} must be a number, got {value!r}"
            ) from None

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in self.params.items())
        return f"{type(self).__name__}({args})"


def _as_int(name: str, value: Any) -> int:
    if isinstance(value, bool):
        raise ParameterError(f"{name} must be an integer, got a bool")
    try:
        as_float = float(value)
    except (TypeError, ValueError):
        raise ParameterError(f"{name} must be an integer, got {value!r}") from None
    as_int = int(as_float)
    if as_int != as_float:
        raise ParameterError(f"{name} must be an integer, got {value!r}")
    return as_int


_REGISTRY: Dict[str, Type[StreamAlgorithm]] = {}


def register(opcode: str):
    """Class decorator registering a :class:`StreamAlgorithm` under an opcode."""

    def decorate(cls: Type[StreamAlgorithm]) -> Type[StreamAlgorithm]:
        if opcode in _REGISTRY:
            raise ValueError(f"opcode {opcode!r} registered twice")
        cls.opcode = opcode
        _REGISTRY[opcode] = cls
        return cls

    return decorate


def get_algorithm_class(opcode: str) -> Type[StreamAlgorithm]:
    """Return the implementation class for an opcode.

    Raises:
        UnknownAlgorithmError: if the opcode is not registered.
    """
    try:
        return _REGISTRY[opcode]
    except KeyError:
        raise UnknownAlgorithmError(opcode) from None


def create(opcode: str, **params: Any) -> StreamAlgorithm:
    """Instantiate the algorithm registered under ``opcode``."""
    return get_algorithm_class(opcode)(**params)


def available_opcodes() -> List[str]:
    """All opcodes the platform ships, sorted."""
    return sorted(_REGISTRY)


def has_lowering(algorithm: StreamAlgorithm) -> bool:
    """True when ``algorithm``'s class overrides :meth:`StreamAlgorithm.lower`.

    The hub compiler uses this to distinguish "this opcode can be
    lowered to an array program" from the base class's not-implemented
    default, without having to call ``lower`` speculatively.
    """
    return type(algorithm).lower is not StreamAlgorithm.lower


def has_row_lowering(algorithm: StreamAlgorithm) -> bool:
    """True when ``algorithm``'s class overrides :meth:`lower_batched_rows`.

    The shape-batched executor uses this (together with a non-empty
    :attr:`StreamAlgorithm.row_params`) to decide whether a node whose
    parameters differ across rows can still run as one tensor dispatch
    with per-row parameter arrays, or must fall back to a per-row loop.
    """
    return (
        type(algorithm).lower_batched_rows
        is not StreamAlgorithm.lower_batched_rows
    )


def positional_param_order(opcode: str) -> Tuple[str, ...]:
    """Order in which an opcode's parameters appear in IL positional form.

    Used by the IL parser to map ``params={10}`` onto keyword arguments.
    """
    cls = get_algorithm_class(opcode)
    return getattr(cls, "param_order", ())
