"""Shared vectorized stream kernels.

Several hub algorithms and precise detectors used to hand-roll the same
three sequential scans: greedy debouncing of candidate indices, a
consecutive-run counter for duration-qualified thresholds, and
sliding-window means.  This module is their single home, with exact
semantics pinned by tests so the interpreter (`process`), the compiled
array program (`lower`) and the main-processor detectors all agree
bit for bit:

* :func:`debounce_indices` — greedy minimum-separation filter over
  already-sorted candidate indices (step/headbutt peak emission,
  detector-side debouncing);
* :func:`consecutive_run_lengths` — run lengths of a boolean
  qualification mask, vectorized with the cumulative-maximum reset
  trick (``sustainedThreshold``);
* :func:`window_means` — means of all length-``size`` sliding windows,
  accumulated column-wise left to right (``movingAvg``).

All three are pure functions: the sequential state an algorithm carries
across chunks enters as an explicit argument (``last_kept``,
``initial``), which is what lets the hub compiler run them over a whole
trace in one call.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def debounce_indices(
    indices: np.ndarray,
    min_separation: int,
    last_kept: Optional[int] = None,
) -> np.ndarray:
    """Greedily keep indices at least ``min_separation`` apart.

    Scans the (sorted, ascending) candidate ``indices`` left to right
    and keeps a candidate only when it lies ``min_separation`` or more
    after the previously kept one — the classic debounce used by the
    step and headbutt peak detectors.

    Args:
        indices: Sorted candidate indices (any integer array).
        min_separation: Minimum index distance between two kept
            candidates.
        last_kept: Index of the most recently kept candidate from an
            earlier scan (carried state for streaming use); ``None``
            means no history, so the first candidate is always kept.

    Returns:
        The kept indices as an ``int64`` array.
    """
    if len(indices) == 0:
        return np.asarray(indices, dtype=np.int64)
    kept: list[int] = []
    last = -(1 << 62) if last_kept is None else int(last_kept)
    # A plain-int loop over a Python list is markedly faster than
    # element-wise numpy indexing, and the greedy scan is inherently
    # sequential (each decision depends on the previous kept index).
    for idx in np.asarray(indices).tolist():
        if idx - last >= min_separation:
            kept.append(idx)
            last = idx
    return np.asarray(kept, dtype=np.int64)


def consecutive_run_lengths(
    qualifying: np.ndarray, initial: int = 0
) -> np.ndarray:
    """Length of the consecutive qualifying run ending at each position.

    ``out[i]`` is the number of consecutive ``True`` values ending at
    (and including) position ``i``; positions where ``qualifying`` is
    False are 0.  ``initial`` extends a run already in progress when the
    array starts True (streaming carry).  Integer arithmetic throughout,
    so the result is exactly what the obvious sequential loop produces.

    Vectorized with the cumulative-maximum reset trick: record the
    1-based position of every ``False``, take the running maximum to
    find the most recent reset at every position, and subtract.
    """
    qualifying = np.asarray(qualifying, dtype=bool)
    n = len(qualifying)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    positions = np.arange(1, n + 1, dtype=np.int64)
    resets = np.where(~qualifying, positions, 0)
    last_reset = np.maximum.accumulate(resets)
    runs = np.where(qualifying, positions - last_reset, 0)
    if initial:
        # The leading run (no reset seen yet) continues the carry.
        runs += np.where(qualifying & (last_reset == 0), int(initial), 0)
    return runs


def window_means(values: np.ndarray, size: int) -> np.ndarray:
    """Mean of every length-``size`` sliding window of ``values``.

    ``out[i]`` is ``(values[i] + values[i+1] + ... + values[i+size-1])
    / size`` with the sum accumulated strictly left to right.  Each
    window mean is a pure function of the window contents with a fixed
    operation order, which makes ``movingAvg`` bitwise chunk-invariant:
    however the stream is split, window ``i`` always sums the same
    floats in the same order.

    Accumulating column-wise (one contiguous vector add per window
    offset) is far faster than reducing a strided
    ``sliding_window_view`` row-wise, because every operand is a
    contiguous slice of the original signal.
    """
    values = np.asarray(values, dtype=np.float64)
    count = len(values) - size + 1
    if count <= 0:
        return np.empty(0, dtype=np.float64)
    acc = values[:count].copy()
    for offset in range(1, size):
        acc += values[offset:offset + count]
    return acc / size


def batched_window_means(values: np.ndarray, size: int) -> np.ndarray:
    """:func:`window_means` over every row of a ``(B, n)`` batch.

    Accumulates the same contiguous column slices in the same left-to-
    right order as the single-trace kernel, so row ``b`` of the result
    is bitwise equal to ``window_means(values[b], size)`` wherever that
    row has a full window.  Columns past a short row's own window count
    hold garbage; callers mask them with per-row lengths.
    """
    values = np.asarray(values, dtype=np.float64)
    count = values.shape[1] - size + 1
    if count <= 0:
        return np.empty((values.shape[0], 0), dtype=np.float64)
    acc = values[:, :count].copy()
    for offset in range(1, size):
        acc += values[:, offset:offset + count]
    return acc / size


def batched_run_lengths(qualifying: np.ndarray) -> np.ndarray:
    """:func:`consecutive_run_lengths` over every row of a batch.

    Integer arithmetic only, so row ``b`` equals
    ``consecutive_run_lengths(qualifying[b])`` exactly.  Runs only grow
    left to right, so right-padding a row cannot disturb its valid
    prefix (batched streams have no cross-chunk carry to thread).
    """
    qualifying = np.asarray(qualifying, dtype=bool)
    n = qualifying.shape[1]
    if n == 0:
        return np.zeros(qualifying.shape, dtype=np.int64)
    positions = np.arange(1, n + 1, dtype=np.int64)[None, :]
    resets = np.where(~qualifying, positions, 0)
    last_reset = np.maximum.accumulate(resets, axis=1)
    return np.where(qualifying, positions - last_reset, 0)
