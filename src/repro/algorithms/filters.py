"""Data-filtering algorithms (paper Section 3.6).

Noise reduction via moving / exponential moving averages on scalar
streams, and FFT-based low/high-pass filtering on frames.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.algorithms.base import StreamAlgorithm, StreamShape, register
from repro.algorithms.kernels import batched_window_means, window_means
from repro.algorithms.transforms import fft_cycles
from repro.errors import ParameterError
from repro.sensors.samples import BatchedChunk, Chunk, ChunkBuffer, StreamKind


@register("movingAvg")
class MovingAverage(StreamAlgorithm):
    """Sliding-window mean over a scalar stream.

    Parameters:
        size: Window length in samples.

    Faithful to the paper's interpreter semantics (Section 3.5): "a
    moving average with a window size of N will not produce a result
    until it has received N data points" — the first output item is
    emitted for the N-th input sample, then one output per input.
    """

    n_inputs = 1
    input_kind = StreamKind.SCALAR
    output_kind = StreamKind.SCALAR
    chunk_invariant = True
    incremental = True
    param_order = ("size",)

    def __init__(self, size: int):
        super().__init__(size=size)
        self.size = self._require_positive_int("size", size)
        self._carry = ChunkBuffer()

    def process(self, chunks: Sequence[Chunk]) -> Chunk:
        (chunk,) = chunks
        self._carry.extend(chunk)
        n = len(self._carry)
        if n < self.size:
            return Chunk.empty(StreamKind.SCALAR, chunk.rate_hz)
        # Each output is the mean of exactly its window's samples,
        # summed left to right (`window_means`).  Unlike a running
        # cumulative sum — whose rounding depends on where the carry
        # buffer happens to start — every window mean is a pure function
        # of the window contents with a fixed operation order, which is
        # what makes this opcode bitwise chunk-invariant and eligible
        # for the fused and compiled fast paths.
        means = window_means(self._carry.values, self.size)
        times = self._carry.times[self.size - 1:]
        # Keep the last size-1 samples as carry for the next chunk.
        self._carry.consume(n - (self.size - 1))
        return Chunk.scalars(times, means, chunk.rate_hz)

    def lower(self, chunks: Sequence[Chunk]) -> Chunk:
        """Whole-trace window means; the carry buffer collapses away."""
        (chunk,) = chunks
        if len(chunk) < self.size:
            return Chunk.empty(StreamKind.SCALAR, chunk.rate_hz)
        return Chunk.view(
            StreamKind.SCALAR,
            chunk.times[self.size - 1:],
            window_means(chunk.values, self.size),
            chunk.rate_hz,
        )

    def lower_batched(self, batches: Sequence[BatchedChunk]) -> BatchedChunk:
        """Per-row window means in one 2-D pass.

        The batched kernel accumulates the same contiguous column
        slices in the same order as the per-trace kernel, so every
        row's valid windows are bitwise identical; rows shorter than
        the window simply get length 0.
        """
        (batch,) = batches
        if batch.n_max < self.size:
            rows = batch.batch_size
            return BatchedChunk.view(
                StreamKind.SCALAR,
                np.zeros((rows, 0)),
                np.zeros((rows, 0)),
                np.zeros(rows, dtype=np.int64),
                batch.rate_hz,
            )
        return BatchedChunk.view(
            StreamKind.SCALAR,
            batch.times[:, self.size - 1:],
            batched_window_means(batch.values, self.size),
            np.maximum(batch.lengths - (self.size - 1), 0),
            batch.rate_hz,
        )

    def reset(self) -> None:
        self._carry.clear()

    def incremental_retention(self, merged: Chunk, seen: int) -> int:
        """Keep the last ``size - 1`` samples: too few for a window on
        their own, exactly the predecessors every future window needs."""
        return min(seen, self.size - 1)

    def cycles_per_item(self, in_shapes: Sequence[StreamShape]) -> float:
        # Running-sum implementation: add, subtract, divide per sample.
        return 12.0


@register("expMovingAvg")
class ExponentialMovingAverage(StreamAlgorithm):
    """First-order IIR smoother ``y[n] = a*x[n] + (1-a)*y[n-1]``.

    Parameters:
        alpha: Smoothing factor in ``(0, 1]``.  Larger alpha tracks the
            input more closely; smaller alpha smooths more aggressively.

    Emits one output per input starting with the very first sample
    (seeded with that sample).
    """

    n_inputs = 1
    input_kind = StreamKind.SCALAR
    output_kind = StreamKind.SCALAR
    # Deliberately NOT chunk-invariant: the loop path (short chunks) and
    # the blockwise closed-form path (longer chunks) accumulate rounding
    # in a different order, so re-chunking can change results at ulp
    # level.  Any graph containing this opcode therefore stays on the
    # round-by-round interpreter.
    chunk_invariant = False
    param_order = ("alpha",)

    #: Samples per closed-form block on the vectorized path.  Bounds the
    #: largest decay power ever computed at ``(1-alpha)**_BLOCK``, so
    #: long audio chunks can neither underflow nor cost O(n^2) work the
    #: way a whole-chunk convolution did.
    _BLOCK = 64

    def __init__(self, alpha: float):
        super().__init__(alpha=alpha)
        self.alpha = self._require_float("alpha", alpha)
        if not 0.0 < self.alpha <= 1.0:
            raise ParameterError(f"expMovingAvg: alpha must be in (0, 1], got {alpha}")
        self._state: float | None = None
        self._lower_triangle: np.ndarray | None = None

    def process(self, chunks: Sequence[Chunk]) -> Chunk:
        (chunk,) = chunks
        if chunk.is_empty:
            return chunk
        x = chunk.values
        prev = x[0] if self._state is None else self._state
        decay = 1.0 - self.alpha
        if len(x) > self._BLOCK:
            out = self._scan_blockwise(x, prev)
        else:
            out = np.empty_like(x)
            y = prev
            for i, xi in enumerate(x):
                y = self.alpha * xi + decay * y
                out[i] = y
        self._state = float(out[-1])
        return Chunk.scalars(chunk.times, out, chunk.rate_hz)

    def _scan_blockwise(self, x: np.ndarray, prev: float) -> np.ndarray:
        """O(n) closed-form scan, one fixed-size block at a time.

        Within a block of ``B`` samples the recurrence has the closed
        form ``y[k] = (1-a)^(k+1) * prev + a * sum_{j<=k} (1-a)^(k-j)
        x[j]``; the inner sums for *all* blocks are one matmul against a
        precomputed lower-triangular decay matrix, and the carry from
        block to block follows the scalar recurrence ``prev' = (1-a)^B
        * prev + a * local[-1]``.  Total work is O(n * B) with
        contiguous BLAS-friendly operands — linear in the chunk, unlike
        the previous full-length convolution (quadratic, and its
        ``decay ** arange(n)`` powers underflowed on long audio
        chunks).
        """
        n = len(x)
        block = self._BLOCK
        decay = 1.0 - self.alpha
        if self._lower_triangle is None:
            offsets = np.arange(block)
            exponents = offsets[:, None] - offsets[None, :]
            self._lower_triangle = np.where(
                exponents >= 0, decay ** np.maximum(exponents, 0), 0.0
            )
        n_blocks = -(-n // block)
        padded = np.zeros(n_blocks * block, dtype=np.float64)
        padded[:n] = x
        # local[i, k] = sum_{j<=k} decay^(k-j) * x[i*B + j]
        local = padded.reshape(n_blocks, block) @ self._lower_triangle.T
        # Scalar carry recurrence across blocks (n/B plain-float steps).
        decay_block = decay ** block
        tail = self.alpha * local[:, -1]
        carries = np.empty(n_blocks, dtype=np.float64)
        carry = prev
        for i, t in enumerate(tail.tolist()):
            carries[i] = carry
            carry = decay_block * carry + t
        powers = decay ** np.arange(1, block + 1)
        out = powers[None, :] * carries[:, None] + self.alpha * local
        return out.reshape(-1)[:n]

    def reset(self) -> None:
        self._state = None

    def cycles_per_item(self, in_shapes: Sequence[StreamShape]) -> float:
        return 10.0


class _FFTBandFilter(StreamAlgorithm):
    """Shared implementation for FFT-based low/high-pass filtering.

    Each input frame is transformed, bins outside the pass band are
    zeroed, and the frame is transformed back.  ``cutoff_hz`` maps to a
    bin index through the frame's underlying sample rate.
    """

    n_inputs = 1
    input_kind = StreamKind.FRAME
    output_kind = StreamKind.FRAME
    # Per-frame transform: each output frame depends only on its input
    # frame, never on chunk boundaries.
    chunk_invariant = True
    incremental = True
    param_order = ("cutoff_hz",)

    #: True keeps bins below the cutoff (low-pass); False keeps above.
    keep_low = True

    def __init__(self, cutoff_hz: float):
        super().__init__(cutoff_hz=cutoff_hz)
        self.cutoff_hz = self._require_float("cutoff_hz", cutoff_hz)
        if self.cutoff_hz <= 0:
            raise ParameterError(f"{self.opcode}: cutoff_hz must be positive")

    def process(self, chunks: Sequence[Chunk]) -> Chunk:
        (chunk,) = chunks
        if chunk.is_empty:
            return chunk
        width = chunk.values.shape[1]
        spectra = np.fft.rfft(chunk.values, axis=1)
        freqs = np.fft.rfftfreq(width, d=1.0 / chunk.rate_hz)
        mask = freqs <= self.cutoff_hz if self.keep_low else freqs >= self.cutoff_hz
        spectra[:, ~mask] = 0.0
        filtered = np.fft.irfft(spectra, n=width, axis=1)
        return Chunk(StreamKind.FRAME, chunk.times, filtered, chunk.rate_hz)

    def lower(self, chunks: Sequence[Chunk]) -> Chunk:
        """Stateless per-frame transform: the whole trace is one process call."""
        return self.process(chunks)

    def lower_batched(self, batches: Sequence[BatchedChunk]) -> BatchedChunk:
        """Itemwise: each frame filters independently, so the batch
        axis folds into the item axis (padding frames are zeros)."""
        return self._lower_batched_itemwise(batches)

    def cycles_per_item(self, in_shapes: Sequence[StreamShape]) -> float:
        # Forward FFT + masking + inverse FFT per frame.
        width = in_shapes[0].width
        return 2.0 * fft_cycles(width) + 4.0 * width


@register("lowPass")
class LowPassFilter(_FFTBandFilter):
    """FFT-based low-pass filter keeping content at or below ``cutoff_hz``."""

    keep_low = True


@register("highPass")
class HighPassFilter(_FFTBandFilter):
    """FFT-based high-pass filter keeping content at or above ``cutoff_hz``.

    The siren detector's first stage (a 750 Hz high-pass removing most
    non-siren sound, Section 3.7.2) is an instance of this algorithm.
    """

    keep_low = False
