"""Statistical feature extraction over frames (paper Section 3.6:
"a set of statistical functions")."""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from repro.algorithms.base import StreamAlgorithm, StreamShape, register
from repro.errors import ParameterError
from repro.sensors.samples import BatchedChunk, Chunk, StreamKind

_STATS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "mean": lambda v: np.mean(v, axis=1),
    "variance": lambda v: np.var(v, axis=1),
    "std": lambda v: np.std(v, axis=1),
    "min": lambda v: np.min(v, axis=1),
    "max": lambda v: np.max(v, axis=1),
    "range": lambda v: np.ptp(v, axis=1),
    "rms": lambda v: np.sqrt(np.mean(v * v, axis=1)),
    "median": lambda v: np.median(v, axis=1),
    "energy": lambda v: np.sum(v * v, axis=1),
    "mad": lambda v: np.mean(np.abs(v - np.mean(v, axis=1, keepdims=True)), axis=1),
}

#: Names accepted by :class:`Statistic`.
STATISTIC_NAMES = tuple(sorted(_STATS))


@register("stat")
class Statistic(StreamAlgorithm):
    """Reduce each frame to one statistic.

    Parameters:
        name: One of :data:`STATISTIC_NAMES` (``mean``, ``variance``,
            ``std``, ``min``, ``max``, ``range``, ``rms``, ``median``,
            ``energy``, ``mad``).

    The music-journal wake-up condition's "variance of the amplitude
    over the entire window" branch (Section 3.7.2) is
    ``Statistic("variance")``.
    """

    n_inputs = 1
    input_kind = StreamKind.FRAME
    output_kind = StreamKind.SCALAR
    # Per-frame reduction: output depends only on the frame contents.
    chunk_invariant = True
    incremental = True
    param_order = ("name",)

    #: Relative per-sample cost of each statistic on an MCU.
    _COST = {
        "mean": 3.0,
        "variance": 8.0,
        "std": 8.0,
        "min": 2.0,
        "max": 2.0,
        "range": 4.0,
        "rms": 8.0,
        "median": 40.0,  # needs a sort
        "energy": 6.0,
        "mad": 10.0,
    }

    def __init__(self, name: str):
        super().__init__(name=name)
        if name not in _STATS:
            raise ParameterError(
                f"stat: unknown statistic {name!r}; choose from {STATISTIC_NAMES}"
            )
        self.name = name
        self._fn = _STATS[name]

    def process(self, chunks: Sequence[Chunk]) -> Chunk:
        (chunk,) = chunks
        if chunk.is_empty:
            return Chunk.empty(StreamKind.SCALAR, chunk.rate_hz)
        values = self._fn(np.asarray(chunk.values, dtype=np.float64))
        return Chunk.scalars(chunk.times, values, chunk.rate_hz)

    def lower(self, chunks: Sequence[Chunk]) -> Chunk:
        """Stateless per-frame reduction: the whole trace is one process call."""
        return self.process(chunks)

    def lower_batched(self, batches: Sequence[BatchedChunk]) -> BatchedChunk:
        """Itemwise: each frame reduces independently, so the batch
        axis folds into the item axis."""
        return self._lower_batched_itemwise(batches)

    def propagate_shape(self, in_shapes: Sequence[StreamShape]) -> StreamShape:
        first = in_shapes[0]
        return StreamShape(StreamKind.SCALAR, first.items_per_second, 1, first.rate_hz)

    def cycles_per_item(self, in_shapes: Sequence[StreamShape]) -> float:
        return self._COST[self.name] * in_shapes[0].width
