"""Aggregation algorithms joining multiple branches.

Section 3.2: "if the pipeline contains multiple branches, aggregation
algorithms need to be used to reduce the number of branches until a
single branch is left."  :class:`~repro.algorithms.features.VectorMagnitude`
is one such aggregator; this module adds element-wise min/max/sum/mean
aggregators.  ``minOf`` over band indicators implements the logical AND
that the music-journal and phrase-detection wake-up conditions need to
combine their two feature branches (Section 3.7.2).
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from repro.algorithms.base import PORT_VARIADIC, StreamAlgorithm, StreamShape, register
from repro.sensors.samples import BatchedChunk, Chunk, StreamKind


class _ElementwiseAggregate(StreamAlgorithm):
    """Shared implementation for element-wise variadic aggregation."""

    n_inputs = PORT_VARIADIC
    input_kind = StreamKind.SCALAR
    output_kind = StreamKind.SCALAR
    chunk_invariant = True
    incremental = True
    param_order = ()

    _reduce: Callable[..., np.ndarray]

    def process(self, chunks: Sequence[Chunk]) -> Chunk:
        first = chunks[0]
        if first.is_empty:
            return first
        stacked = np.stack([c.values for c in chunks])
        return Chunk.scalars(first.times, type(self)._reduce(stacked), first.rate_hz)

    def lower(self, chunks: Sequence[Chunk]) -> Chunk:
        """Stateless reduction: the whole trace is one process call."""
        return self.process(chunks)

    def lower_batched(self, batches: Sequence[BatchedChunk]) -> BatchedChunk:
        """Itemwise over aligned ports: stacking reduces along a new
        leading axis exactly as in the per-trace rule."""
        return self._lower_batched_itemwise(batches)

    def cycles_per_item(self, in_shapes: Sequence[StreamShape]) -> float:
        return 4.0 * len(in_shapes)


@register("minOf")
class MinOf(_ElementwiseAggregate):
    """Element-wise minimum across aligned scalar branches.

    Feeding band indicators (0/1) into ``minOf`` and thresholding at 1
    yields "all branch conditions hold" — the conjunction used by the
    two-feature audio wake-up conditions.
    """

    _reduce = staticmethod(lambda stacked: np.min(stacked, axis=0))


@register("maxOf")
class MaxOf(_ElementwiseAggregate):
    """Element-wise maximum across aligned scalar branches (logical OR
    over band indicators)."""

    _reduce = staticmethod(lambda stacked: np.max(stacked, axis=0))


@register("sumOf")
class SumOf(_ElementwiseAggregate):
    """Element-wise sum across aligned scalar branches ("at least k of
    n" voting when combined with a threshold)."""

    _reduce = staticmethod(lambda stacked: np.sum(stacked, axis=0))


@register("meanOf")
class MeanOf(_ElementwiseAggregate):
    """Element-wise mean across aligned scalar branches."""

    _reduce = staticmethod(lambda stacked: np.mean(stacked, axis=0))
