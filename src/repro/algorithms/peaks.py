"""Streaming local-extrema detection.

The step and headbutt classifiers (Section 3.7.1) "search for local
maxima/minima" of a filtered axis within an amplitude band.  This module
provides that search as a reusable hub algorithm so a wake-up condition
can end with ``LocalExtrema -> OUT``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.algorithms.base import StreamAlgorithm, StreamShape, register
from repro.algorithms.kernels import debounce_indices
from repro.errors import ParameterError
from repro.sensors.samples import BatchedChunk, Chunk, StreamKind

#: Extremum polarities :class:`LocalExtrema` can search for.
EXTREMA_MODES = ("max", "min")


@register("localExtrema")
class LocalExtrema(StreamAlgorithm):
    """Emit local maxima (or minima) of a scalar stream within a band.

    Parameters:
        mode: ``"max"`` to detect peaks, ``"min"`` to detect valleys.
        low / high: Inclusive amplitude band an extremum must fall in to
            be emitted.  The step detector uses maxima in
            ``[2.5, 4.5] m/s^2``; the headbutt detector uses minima in
            ``[-6.75, -3.75] m/s^2``.
        min_separation: Minimum number of samples between two emitted
            extrema (debounce).  Defaults to 1 (no debounce).

    A sample ``x[i]`` is a local maximum when ``x[i-1] < x[i] >= x[i+1]``
    (mirrored for minima).  Detection therefore lags the input by one
    sample; the emitted item carries the extremum's own timestamp.
    """

    n_inputs = 1
    input_kind = StreamKind.SCALAR
    output_kind = StreamKind.SCALAR
    # State is exact (last sample value + last emission time compared
    # with ==/</>), so the emitted extrema never depend on chunking.
    chunk_invariant = True
    incremental = True
    param_order = ("mode", "low", "high", "min_separation")

    def __init__(
        self,
        mode: str,
        low: float,
        high: float,
        min_separation: int = 1,
    ):
        super().__init__(mode=mode, low=low, high=high, min_separation=min_separation)
        if mode not in EXTREMA_MODES:
            raise ParameterError(f"localExtrema: mode must be one of {EXTREMA_MODES}")
        self.mode = mode
        self.low = self._require_float("low", low)
        self.high = self._require_float("high", high)
        if self.low > self.high:
            raise ParameterError(f"localExtrema: low ({low}) exceeds high ({high})")
        self.min_separation = self._require_positive_int("min_separation", min_separation)
        self._prev_times = np.empty(0)
        self._prev_values = np.empty(0)
        self._last_emit_index = -(10**12)
        self._stream_index = 0  # index of the first sample in _prev buffers

    def process(self, chunks: Sequence[Chunk]) -> Chunk:
        (chunk,) = chunks
        values = np.concatenate([self._prev_values, chunk.values])
        times = np.concatenate([self._prev_times, chunk.times])
        if len(values) < 3:
            self._prev_values, self._prev_times = values, times
            return Chunk.empty(StreamKind.SCALAR, chunk.rate_hz)
        candidate = self._candidates(values)
        kept = debounce_indices(
            candidate + self._stream_index,
            self.min_separation,
            last_kept=self._last_emit_index,
        )
        if len(kept):
            self._last_emit_index = int(kept[-1])
        local = kept - self._stream_index
        emit_times = times[local]
        emit_values = values[local]
        # Keep the final two samples so extrema at chunk edges are found.
        keep = len(values) - 2
        self._stream_index += keep
        self._prev_values, self._prev_times = values[keep:], times[keep:]
        return Chunk.scalars(emit_times, emit_values, chunk.rate_hz)

    def _candidates(self, values: np.ndarray) -> np.ndarray:
        """Indices of in-band extrema in ``values`` (pure, vectorized)."""
        mid = values[1:-1]
        if self.mode == "max":
            is_ext = (values[:-2] < mid) & (mid >= values[2:])
        else:
            is_ext = (values[:-2] > mid) & (mid <= values[2:])
        in_band = (mid >= self.low) & (mid <= self.high)
        return np.flatnonzero(is_ext & in_band) + 1  # index into `values`

    def lower(self, chunks: Sequence[Chunk]) -> Chunk:
        """Whole-trace extrema: the edge buffers and index carry collapse."""
        (chunk,) = chunks
        values, times = chunk.values, chunk.times
        if len(values) < 3:
            return Chunk.empty(StreamKind.SCALAR, chunk.rate_hz)
        kept = debounce_indices(
            self._candidates(values), self.min_separation, last_kept=-(10**12)
        )
        return Chunk.scalars(times[kept], values[kept], chunk.rate_hz)

    def lower_batched(self, batches: Sequence[BatchedChunk]) -> BatchedChunk:
        """Vectorized candidate detection, per-row debouncing.

        Neighbor comparisons and the band check run on the full tensor;
        a candidate is then valid only at interior positions of its own
        row (``1 .. length-2``).  The greedy debounce is inherently
        sequential, so the (sparse) candidate indices of all rows are
        flattened — spaced so rows cannot interact — into one scan that
        makes exactly the per-row decisions.  With the default
        ``min_separation == 1`` every candidate survives and the scan
        is skipped entirely.
        """
        (batch,) = batches
        values = batch.values
        rows, width = values.shape
        mask = np.zeros((rows, width), dtype=bool)
        if width >= 3:
            mid = values[:, 1:-1]
            if self.mode == "max":
                is_ext = (values[:, :-2] < mid) & (mid >= values[:, 2:])
            else:
                is_ext = (values[:, :-2] > mid) & (mid <= values[:, 2:])
            in_band = (mid >= self.low) & (mid <= self.high)
            candidate = is_ext & in_band
            # Interior positions only: candidate column c sits at stream
            # index c+1, which must be <= length-2 of its own row.
            candidate &= (
                np.arange(width - 2, dtype=np.int64)[None, :]
                < batch.lengths[:, None] - 2
            )
            if self.min_separation == 1:
                mask[:, 1:-1] = candidate
            else:
                # One flattened greedy scan replaces B per-row scans:
                # with rows spaced ``width + min_separation`` apart the
                # last kept candidate of one row sits more than
                # ``min_separation`` before the first candidate of the
                # next, so the combined scan makes exactly the per-row
                # decisions (each row's first candidate is always kept,
                # matching the fresh ``last_kept`` a per-row scan gets).
                rows_idx, cols_idx = np.nonzero(candidate)
                stride = width + self.min_separation
                kept = debounce_indices(
                    rows_idx * stride + cols_idx + 1,
                    self.min_separation,
                    last_kept=-(10**12),
                )
                mask[kept // stride, kept % stride] = True
        return batch.take(mask)

    def reset(self) -> None:
        self._prev_times = np.empty(0)
        self._prev_values = np.empty(0)
        self._last_emit_index = -(10**12)
        self._stream_index = 0

    def incremental_ineligibility(self) -> str | None:
        if self.min_separation != 1:
            return (
                "localExtrema min_separation > 1 debounces against an "
                "emission history that bounded replay cannot carry"
            )
        return None

    def incremental_retention(self, merged: Chunk, seen: int) -> int:
        """Keep the final two samples so extrema at span edges are found.

        Two samples can never form a candidate on their own (three are
        required), and the sample at index ``seen - 2`` was already
        judged when its right neighbour arrived — with
        ``min_separation == 1`` the debounce keeps every candidate, so
        replaying the pair emits nothing and only genuinely new extrema
        fire when the next span lands.
        """
        return min(seen, 2)

    def cycles_per_item(self, in_shapes: Sequence[StreamShape]) -> float:
        # Two comparisons plus band check per sample.
        return 8.0
