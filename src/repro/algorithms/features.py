"""Feature-extraction algorithms (paper Section 3.6).

* vector magnitude of the acceleration vector,
* zero-crossing rate of a frame,
* magnitude / frequency / prominence of the dominant frequency bin.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.algorithms.base import PORT_VARIADIC, StreamAlgorithm, StreamShape, register
from repro.errors import ParameterError
from repro.sensors.samples import BatchedChunk, Chunk, StreamKind


@register("vectorMagnitude")
class VectorMagnitude(StreamAlgorithm):
    """Euclidean magnitude across two or more aligned scalar streams.

    The canonical use (Figure 2) combines the three accelerometer axes
    into a single orientation-independent magnitude stream:
    ``sqrt(x^2 + y^2 + z^2)``.

    All inputs must be item-aligned; the hub runtime's synchronizer
    guarantees this by buffering faster inputs.
    """

    n_inputs = PORT_VARIADIC
    input_kind = StreamKind.SCALAR
    output_kind = StreamKind.SCALAR
    chunk_invariant = True
    incremental = True
    param_order = ()

    def process(self, chunks: Sequence[Chunk]) -> Chunk:
        first = chunks[0]
        if first.is_empty:
            return first
        stacked = np.stack([c.values for c in chunks])
        magnitude = np.sqrt(np.sum(stacked * stacked, axis=0))
        return Chunk.scalars(first.times, magnitude, first.rate_hz)

    def lower(self, chunks: Sequence[Chunk]) -> Chunk:
        """Stateless reduction: the whole trace is one process call."""
        return self.process(chunks)

    def lower_batched(self, batches: Sequence[BatchedChunk]) -> BatchedChunk:
        """Itemwise over aligned ports: the batch axis folds into the
        item axis, preserving the per-item reduction order."""
        return self._lower_batched_itemwise(batches)

    def cycles_per_item(self, in_shapes: Sequence[StreamShape]) -> float:
        # One multiply-accumulate per input plus a square root.
        return 6.0 * len(in_shapes) + 30.0


@register("zeroCrossingRate")
class ZeroCrossingRate(StreamAlgorithm):
    """Fraction of adjacent sample pairs in a frame that change sign.

    Output is in ``[0, 1]``: ``0`` for a constant-sign frame, approaching
    ``1`` for a signal alternating sign every sample.  High-frequency
    content (e.g. unvoiced speech) yields a high ZCR; tonal music yields
    a lower, more stable ZCR — the contrast the music-journal and
    phrase-detection wake-up conditions exploit (Section 3.7.2).
    """

    n_inputs = 1
    input_kind = StreamKind.FRAME
    output_kind = StreamKind.SCALAR
    chunk_invariant = True
    incremental = True
    param_order = ()

    def process(self, chunks: Sequence[Chunk]) -> Chunk:
        (chunk,) = chunks
        if chunk.is_empty:
            return Chunk.empty(StreamKind.SCALAR, chunk.rate_hz)
        signs = np.signbit(chunk.values)
        crossings = np.sum(signs[:, 1:] != signs[:, :-1], axis=1)
        width = chunk.values.shape[1]
        rate = crossings / max(width - 1, 1)
        return Chunk.scalars(chunk.times, rate.astype(np.float64), chunk.rate_hz)

    def lower(self, chunks: Sequence[Chunk]) -> Chunk:
        """Stateless per-frame feature: the whole trace is one process call."""
        return self.process(chunks)

    def lower_batched(self, batches: Sequence[BatchedChunk]) -> BatchedChunk:
        """Itemwise over aligned ports: the batch axis folds into the
        item axis, preserving the per-item reduction order."""
        return self._lower_batched_itemwise(batches)

    def propagate_shape(self, in_shapes: Sequence[StreamShape]) -> StreamShape:
        first = in_shapes[0]
        return StreamShape(StreamKind.SCALAR, first.items_per_second, 1, first.rate_hz)

    def cycles_per_item(self, in_shapes: Sequence[StreamShape]) -> float:
        # Compare + conditional increment per sample in the frame.
        return 5.0 * in_shapes[0].width


#: Outputs :class:`DominantFrequency` can be configured to produce.
DOMINANT_MODES = ("magnitude", "frequency", "ratio")


@register("dominantFrequency")
class DominantFrequency(StreamAlgorithm):
    """Properties of the strongest frequency bin of a spectrum.

    Parameters:
        mode: What to emit per spectrum item:

            * ``"magnitude"`` — magnitude of the dominant bin;
            * ``"frequency"`` — the dominant bin's frequency in Hz;
            * ``"ratio"`` — dominant magnitude divided by the mean
              magnitude of all bins, a pitch-prominence measure (the
              siren detector's "is this a pitched sound" feature,
              Section 3.7.2).
        min_hz / max_hz: Optional band restricting which bins compete
            for dominance (e.g. the siren detector's 850-1800 Hz band).

    The DC bin is always excluded: a constant offset is not a "dominant
    frequency" in any useful sense.
    """

    n_inputs = 1
    input_kind = StreamKind.SPECTRUM
    output_kind = StreamKind.SCALAR
    chunk_invariant = True
    incremental = True
    param_order = ("mode", "min_hz", "max_hz")

    def __init__(self, mode: str = "magnitude", min_hz: float = 0.0, max_hz: float | None = None):
        super().__init__(mode=mode, min_hz=min_hz, max_hz=max_hz)
        if mode not in DOMINANT_MODES:
            raise ParameterError(
                f"dominantFrequency: mode must be one of {DOMINANT_MODES}, got {mode!r}"
            )
        self.mode = mode
        self.min_hz = self._require_float("min_hz", min_hz)
        self.max_hz = self._require_float("max_hz", max_hz) if max_hz is not None else None

    def process(self, chunks: Sequence[Chunk]) -> Chunk:
        (chunk,) = chunks
        if chunk.is_empty:
            return Chunk.empty(StreamKind.SCALAR, chunk.rate_hz)
        magnitudes = np.abs(chunk.values)
        nbins = magnitudes.shape[1]
        width = max(2 * (nbins - 1), 1)
        freqs = np.fft.rfftfreq(width, d=1.0 / chunk.rate_hz)
        band = freqs > 0.0  # exclude DC
        band &= freqs >= self.min_hz
        if self.max_hz is not None:
            band &= freqs <= self.max_hz
        if not band.any():
            raise ParameterError(
                "dominantFrequency: the configured band contains no FFT bins"
            )
        in_band = magnitudes[:, band]
        band_freqs = freqs[band]
        peak_idx = np.argmax(in_band, axis=1)
        peak_mag = in_band[np.arange(len(chunk)), peak_idx]
        if self.mode == "magnitude":
            out = peak_mag
        elif self.mode == "frequency":
            out = band_freqs[peak_idx]
        else:  # ratio
            mean_mag = np.mean(magnitudes[:, 1:], axis=1)  # mean over non-DC bins
            with np.errstate(divide="ignore", invalid="ignore"):
                out = np.where(mean_mag > 0, peak_mag / mean_mag, 0.0)
        return Chunk.scalars(chunk.times, out.astype(np.float64), chunk.rate_hz)

    def lower(self, chunks: Sequence[Chunk]) -> Chunk:
        """Stateless per-spectrum feature: the whole trace is one process call."""
        return self.process(chunks)

    def lower_batched(self, batches: Sequence[BatchedChunk]) -> BatchedChunk:
        """Itemwise over aligned ports: the batch axis folds into the
        item axis, preserving the per-item reduction order."""
        return self._lower_batched_itemwise(batches)

    def propagate_shape(self, in_shapes: Sequence[StreamShape]) -> StreamShape:
        first = in_shapes[0]
        return StreamShape(StreamKind.SCALAR, first.items_per_second, 1, first.rate_hz)

    def cycles_per_item(self, in_shapes: Sequence[StreamShape]) -> float:
        # |.|, compare, accumulate per bin.
        return 12.0 * in_shapes[0].width
