"""Admission-control algorithms (paper Section 3.6: "configurable high
or low thresholds").

An admission-control node passes an item through only when its value
satisfies the configured condition; otherwise it emits nothing.  When an
admission-control node is the last algorithm in a pipeline, each item it
passes reaches ``OUT`` and wakes the main processor.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.algorithms.base import StreamAlgorithm, StreamShape, register
from repro.algorithms.kernels import batched_run_lengths, consecutive_run_lengths
from repro.errors import ParameterError
from repro.sensors.samples import BatchedChunk, Chunk, StreamKind


@register("minThreshold")
class MinThreshold(StreamAlgorithm):
    """Pass items whose value is at least ``threshold``.

    This is the "significant motion" example's final stage (Figure 2):
    a smoothed acceleration magnitude of at least 15 m/s^2 wakes the
    main CPU.
    """

    n_inputs = 1
    input_kind = StreamKind.SCALAR
    output_kind = StreamKind.SCALAR
    chunk_invariant = True
    incremental = True
    param_order = ("threshold",)
    row_params = ("threshold",)

    def __init__(self, threshold: float):
        super().__init__(threshold=threshold)
        self.threshold = self._require_float("threshold", threshold)

    def process(self, chunks: Sequence[Chunk]) -> Chunk:
        (chunk,) = chunks
        return chunk.take(chunk.values >= self.threshold)

    def lower(self, chunks: Sequence[Chunk]) -> Chunk:
        """Stateless mask-and-take: the whole trace is one process call."""
        return self.process(chunks)

    def lower_batched(self, batches: Sequence[BatchedChunk]) -> BatchedChunk:
        """Batched mask over the full tensor, ragged compaction per row."""
        (batch,) = batches
        return batch.take(batch.values >= self.threshold)

    def lower_batched_rows(
        self, batches: Sequence[BatchedChunk], row_values: Dict[str, np.ndarray]
    ) -> BatchedChunk:
        """Per-row thresholds: one column-broadcast mask over the tensor."""
        (batch,) = batches
        return batch.take(batch.values >= row_values["threshold"][:, None])

    def cycles_per_item(self, in_shapes: Sequence[StreamShape]) -> float:
        return 3.0


@register("maxThreshold")
class MaxThreshold(StreamAlgorithm):
    """Pass items whose value is at most ``threshold``.

    Used for "low threshold" admission control — e.g. the headbutt
    wake-up condition passes strongly negative y-axis accelerations.
    """

    n_inputs = 1
    input_kind = StreamKind.SCALAR
    output_kind = StreamKind.SCALAR
    chunk_invariant = True
    incremental = True
    param_order = ("threshold",)
    row_params = ("threshold",)

    def __init__(self, threshold: float):
        super().__init__(threshold=threshold)
        self.threshold = self._require_float("threshold", threshold)

    def process(self, chunks: Sequence[Chunk]) -> Chunk:
        (chunk,) = chunks
        return chunk.take(chunk.values <= self.threshold)

    def lower(self, chunks: Sequence[Chunk]) -> Chunk:
        """Stateless mask-and-take: the whole trace is one process call."""
        return self.process(chunks)

    def lower_batched(self, batches: Sequence[BatchedChunk]) -> BatchedChunk:
        """Batched mask over the full tensor, ragged compaction per row."""
        (batch,) = batches
        return batch.take(batch.values <= self.threshold)

    def lower_batched_rows(
        self, batches: Sequence[BatchedChunk], row_values: Dict[str, np.ndarray]
    ) -> BatchedChunk:
        """Per-row thresholds: one column-broadcast mask over the tensor."""
        (batch,) = batches
        return batch.take(batch.values <= row_values["threshold"][:, None])

    def cycles_per_item(self, in_shapes: Sequence[StreamShape]) -> float:
        return 3.0


@register("rangeThreshold")
class RangeThreshold(StreamAlgorithm):
    """Pass items whose value lies in ``[low, high]`` (inclusive).

    The transition wake-up condition uses band checks on per-axis
    gravity components (Section 3.7.1).
    """

    n_inputs = 1
    input_kind = StreamKind.SCALAR
    output_kind = StreamKind.SCALAR
    chunk_invariant = True
    incremental = True
    param_order = ("low", "high")
    row_params = ("low", "high")

    def __init__(self, low: float, high: float):
        super().__init__(low=low, high=high)
        self.low = self._require_float("low", low)
        self.high = self._require_float("high", high)
        if self.low > self.high:
            raise ParameterError(f"rangeThreshold: low ({low}) exceeds high ({high})")

    def process(self, chunks: Sequence[Chunk]) -> Chunk:
        (chunk,) = chunks
        mask = (chunk.values >= self.low) & (chunk.values <= self.high)
        return chunk.take(mask)

    def lower(self, chunks: Sequence[Chunk]) -> Chunk:
        """Stateless mask-and-take: the whole trace is one process call."""
        return self.process(chunks)

    def lower_batched(self, batches: Sequence[BatchedChunk]) -> BatchedChunk:
        """Batched band mask over the full tensor, compacted per row."""
        (batch,) = batches
        mask = (batch.values >= self.low) & (batch.values <= self.high)
        return batch.take(mask)

    def lower_batched_rows(
        self, batches: Sequence[BatchedChunk], row_values: Dict[str, np.ndarray]
    ) -> BatchedChunk:
        """Per-row band edges, broadcast down each row."""
        (batch,) = batches
        mask = (batch.values >= row_values["low"][:, None]) & (
            batch.values <= row_values["high"][:, None]
        )
        return batch.take(mask)

    def cycles_per_item(self, in_shapes: Sequence[StreamShape]) -> float:
        return 5.0


@register("bandIndicator")
class BandIndicator(StreamAlgorithm):
    """Emit 1.0 when the value lies in ``[low, high]``, else 0.0.

    Unlike :class:`RangeThreshold`, which *drops* non-qualifying items,
    the indicator emits for every input item and therefore preserves
    item alignment across branches.  That makes it composable with the
    aggregators in :mod:`repro.algorithms.aggregate`: feed one indicator
    per feature branch into ``minOf`` and threshold at 1 to require all
    conditions simultaneously.
    """

    n_inputs = 1
    input_kind = StreamKind.SCALAR
    output_kind = StreamKind.SCALAR
    chunk_invariant = True
    incremental = True
    param_order = ("low", "high")
    row_params = ("low", "high")

    def __init__(self, low: float, high: float):
        super().__init__(low=low, high=high)
        self.low = self._require_float("low", low)
        self.high = self._require_float("high", high)
        if self.low > self.high:
            raise ParameterError(f"bandIndicator: low ({low}) exceeds high ({high})")

    def process(self, chunks: Sequence[Chunk]) -> Chunk:
        (chunk,) = chunks
        mask = (chunk.values >= self.low) & (chunk.values <= self.high)
        return Chunk.scalars(chunk.times, mask.astype(np.float64), chunk.rate_hz)

    def lower(self, chunks: Sequence[Chunk]) -> Chunk:
        """Stateless indicator: the whole trace is one process call."""
        return self.process(chunks)

    def lower_batched(self, batches: Sequence[BatchedChunk]) -> BatchedChunk:
        """Itemwise indicator: one comparison per element, alignment kept."""
        return self._lower_batched_itemwise(batches)

    def lower_batched_rows(
        self, batches: Sequence[BatchedChunk], row_values: Dict[str, np.ndarray]
    ) -> BatchedChunk:
        """Per-row band edges; emits for every item, alignment kept."""
        (batch,) = batches
        mask = (batch.values >= row_values["low"][:, None]) & (
            batch.values <= row_values["high"][:, None]
        )
        return BatchedChunk.view(
            StreamKind.SCALAR,
            batch.times,
            mask.astype(np.float64),
            batch.lengths,
            batch.rate_hz,
        )

    def cycles_per_item(self, in_shapes: Sequence[StreamShape]) -> float:
        return 5.0


@register("sustainedThreshold")
class SustainedThreshold(StreamAlgorithm):
    """Pass an item only after the condition has held for ``count``
    consecutive items.

    Duration-qualified admission control: the siren detector classifies
    "pitched sounds ... that last longer than 650 ms" as sirens
    (Section 3.7.2), which maps to requiring the pitch-prominence
    threshold to hold across several consecutive windows.

    Parameters:
        threshold: Value the items must reach (``>=``).
        count: Number of consecutive qualifying items required.  The
            emission happens on the ``count``-th item of a qualifying
            run and then on every further item while the run persists.
    """

    n_inputs = 1
    input_kind = StreamKind.SCALAR
    output_kind = StreamKind.SCALAR
    chunk_invariant = True
    incremental = True
    param_order = ("threshold", "count")
    row_params = ("threshold", "count")

    def __init__(self, threshold: float, count: int):
        super().__init__(threshold=threshold, count=count)
        self.threshold = self._require_float("threshold", threshold)
        self.count = self._require_positive_int("count", count)
        self._run = 0

    def process(self, chunks: Sequence[Chunk]) -> Chunk:
        (chunk,) = chunks
        if chunk.is_empty:
            return chunk
        qualifying = chunk.values >= self.threshold
        # Integer run lengths via the shared cumsum-reset kernel: exactly
        # the sequential counter, but vectorized.
        runs = consecutive_run_lengths(qualifying, initial=self._run)
        self._run = int(runs[-1])
        return chunk.take(runs >= self.count)

    def lower(self, chunks: Sequence[Chunk]) -> Chunk:
        """Whole-trace run counting; the run carry starts cold at 0."""
        (chunk,) = chunks
        if chunk.is_empty:
            return chunk
        qualifying = chunk.values >= self.threshold
        return chunk.take(consecutive_run_lengths(qualifying) >= self.count)

    def lower_batched(self, batches: Sequence[BatchedChunk]) -> BatchedChunk:
        """Per-row run counting in one 2-D pass.

        Runs grow strictly left to right, so a row's right padding
        cannot perturb its valid prefix; the cold-start carry is 0 for
        every row by construction (each row is a whole trace).
        """
        (batch,) = batches
        qualifying = batch.values >= self.threshold
        return batch.take(batched_run_lengths(qualifying) >= self.count)

    def lower_batched_rows(
        self, batches: Sequence[BatchedChunk], row_values: Dict[str, np.ndarray]
    ) -> BatchedChunk:
        """Per-row thresholds and counts over one 2-D run-length pass."""
        (batch,) = batches
        qualifying = batch.values >= row_values["threshold"][:, None]
        runs = batched_run_lengths(qualifying)
        return batch.take(runs >= row_values["count"][:, None])

    def reset(self) -> None:
        self._run = 0

    def incremental_retention(self, merged: Chunk, seen: int) -> int:
        """Keep the trailing qualifying run, capped at ``count - 1``.

        Replaying at most ``count - 1`` qualifying items re-emits
        nothing on their own (a run that short never fires), while a
        future item extending the run sees a replayed run length of
        ``count - 1 + k`` whenever its true run length is ``>= count``
        — so continuation items fire exactly as in the whole trace.
        """
        if merged.is_empty:
            return 0
        qualifying = merged.values >= self.threshold
        misses = np.flatnonzero(~qualifying)
        trailing = len(qualifying) if not len(misses) else len(qualifying) - int(misses[-1]) - 1
        return min(trailing, self.count - 1)

    def cycles_per_item(self, in_shapes: Sequence[StreamShape]) -> float:
        return 6.0
