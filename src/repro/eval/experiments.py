"""Experiment runners: the paper's configuration matrix.

:func:`run_matrix` replays every (configuration, application, trace)
combination through the simulation engine (:mod:`repro.sim.engine`):
the sweep is planned explicitly, shared hub work is deduplicated by a
:class:`~repro.sim.engine.RunContext`, and ``jobs=N`` fans the plan
across a process pool.  The aggregation helpers compute the quantities
the paper reports — power relative to Oracle (Figures 5 and 7), savings
fractions (Section 5.2), and cross-configuration ratios (Sections
5.3-5.4).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.apps.base import SensingApplication
from repro.power.phone import NEXUS4, PhonePowerProfile
from repro.sim.configs import (
    AlwaysAwake,
    Batching,
    DutyCycling,
    Oracle,
    PredefinedActivity,
    Sidewinder,
)
from repro.sim.configs.base import SensingConfiguration
from repro.sim.engine import (
    ExecutionInfo,
    RunContext,
    SkippedCell,
    execute_plan_with_info,
    plan_matrix,
)
from repro.sim.results import SimulationResult
from repro.traces.base import Trace

#: Short labels used by the figure builders, matching the paper's axes.
CONFIG_LABELS = {
    "always_awake": "AA",
    "duty_cycling_2s": "DC-2",
    "duty_cycling_5s": "DC-5",
    "duty_cycling_10s": "DC-10",
    "duty_cycling_20s": "DC-20",
    "duty_cycling_30s": "DC-30",
    "batching_10s": "Ba-10",
    "predefined_activity": "PA",
    "sidewinder": "Sw",
    "oracle": "Oracle",
}


def paper_configurations(
    sleep_intervals: Sequence[float] = (2.0, 5.0, 10.0, 20.0, 30.0),
    batching_interval: float = 10.0,
) -> List[SensingConfiguration]:
    """The Figure 5 configuration set: AA, DC-*, Ba-10, PA, Sw, Oracle.

    The paper shows Batching at a 10 s interval only ("the other results
    were similar to Duty Cycling", Figure 5 footnote).
    """
    configs: List[SensingConfiguration] = [AlwaysAwake()]
    configs.extend(DutyCycling(interval) for interval in sleep_intervals)
    configs.append(Batching(batching_interval))
    configs.append(PredefinedActivity())
    configs.append(Sidewinder())
    configs.append(Oracle())
    return configs


@dataclass
class Matrix:
    """All results of one experiment sweep, with indexed lookup helpers.

    Attributes:
        results: Every simulation result, in the order added.
        skipped: (app, trace) pairs the sweep could not run because the
            trace lacked the application's sensors (empty for the
            paper's corpora, where every app/trace pair is runnable).
        execution: How the engine ran the sweep (serial vs pool and
            why) — ``None`` for hand-assembled matrices.
    """

    results: List[SimulationResult] = field(default_factory=list)
    skipped: List[SkippedCell] = field(default_factory=list)
    execution: Optional[ExecutionInfo] = None

    def __post_init__(self) -> None:
        self._by_key: Dict[Tuple[str, str, str], SimulationResult] = {}
        self._by_config_app: Dict[
            Tuple[str, str], List[SimulationResult]
        ] = defaultdict(list)
        for result in self.results:
            self._index(result)

    def _index(self, result: SimulationResult) -> None:
        key = (result.config_name, result.app_name, result.trace_name)
        # First-wins, matching the historical scan order of ``get``.
        self._by_key.setdefault(key, result)
        self._by_config_app[(result.config_name, result.app_name)].append(
            result
        )

    def add(self, result: SimulationResult) -> None:
        """Record one simulation result (keeps the indexes current)."""
        self.results.append(result)
        self._index(result)

    def get(
        self, config_name: str, app_name: str, trace_name: str
    ) -> SimulationResult:
        """Exact O(1) lookup; raises ``KeyError`` when absent."""
        try:
            return self._by_key[(config_name, app_name, trace_name)]
        except KeyError:
            raise KeyError((config_name, app_name, trace_name)) from None

    def select(
        self,
        config_name: str | None = None,
        app_name: str | None = None,
        predicate: Callable[[SimulationResult], bool] | None = None,
    ) -> List[SimulationResult]:
        """All results matching the given filters."""
        if config_name is not None and app_name is not None:
            rows: Iterable[SimulationResult] = self._by_config_app.get(
                (config_name, app_name), []
            )
        else:
            rows = (
                r
                for r in self.results
                if (config_name is None or r.config_name == config_name)
                and (app_name is None or r.app_name == app_name)
            )
        if predicate is not None:
            return [r for r in rows if predicate(r)]
        return list(rows)

    def mean_power(
        self,
        config_name: str,
        app_name: str,
        trace_names: Iterable[str] | None = None,
    ) -> float:
        """Mean average power over the selected traces, mW."""
        names = set(trace_names) if trace_names is not None else None
        rows = [
            r
            for r in self._by_config_app.get((config_name, app_name), [])
            if names is None or r.trace_name in names
        ]
        if not rows:
            raise KeyError((config_name, app_name, trace_names))
        return sum(r.average_power_mw for r in rows) / len(rows)

    def relative_to_oracle(
        self,
        config_name: str,
        app_name: str,
        trace_names: Iterable[str] | None = None,
    ) -> float:
        """Mean power of a configuration divided by Oracle's (Figure 5)."""
        oracle = self.mean_power("oracle", app_name, trace_names)
        if oracle <= 0:
            return float("inf")
        return self.mean_power(config_name, app_name, trace_names) / oracle

    def savings_fraction(
        self,
        config_name: str,
        app_name: str,
        trace_names: Iterable[str] | None = None,
    ) -> float:
        """(AA - X) / (AA - Oracle), the Section 5.2 metric."""
        aa = self.mean_power("always_awake", app_name, trace_names)
        oracle = self.mean_power("oracle", app_name, trace_names)
        x = self.mean_power(config_name, app_name, trace_names)
        if aa - oracle <= 0:
            return 1.0
        return (aa - x) / (aa - oracle)


def run_matrix(
    configs: Sequence[SensingConfiguration],
    apps: Sequence[SensingApplication],
    traces: Sequence[Trace],
    jobs: int = 1,
    cache: bool = True,
    profile: PhonePowerProfile = NEXUS4,
    context: Optional[RunContext] = None,
    fuse: bool = True,
    compiled: bool = True,
    batch: bool = True,
    shape_batch: bool = True,
) -> Matrix:
    """Simulate every (config, app, trace) combination.

    Args:
        configs: Sensing configurations to sweep.
        apps: Applications to simulate.
        traces: Traces to replay.
        jobs: 1 runs serially through one shared
            :class:`~repro.sim.engine.RunContext`; ``N > 1`` requests
            the persistent process pool (the engine falls back to
            serial for plans too small to amortize pool startup — see
            ``Matrix.execution.reason``).
        cache: Enable engine memoization (results are identical either
            way; ``False`` is the ``--no-cache`` escape hatch).
        profile: Phone power profile for every cell.
        context: Optional externally owned context (serial runs only) —
            pass the same one across sweeps to keep its cache warm.
        fuse: Enable the fused hub fast path for eligible conditions
            (results are bit-identical either way; ``False`` is the
            ``--no-fuse`` escape hatch).
        compiled: Enable the compiled whole-trace hub path for
            eligible conditions (results are bit-identical either way;
            ``False`` is the ``--no-compile`` escape hatch).
        batch: Enable tensor-major batching of same-condition cells
            (results are bit-identical either way; ``False`` is the
            ``--no-batch`` escape hatch).
        shape_batch: Enable shape-keyed batching of different
            conditions sharing one graph shape (results are
            bit-identical either way; ``False`` is the
            ``--no-shape-batch`` escape hatch).

    (app, trace) pairs whose sensors are absent from the trace are not
    silently dropped: they are recorded on :attr:`Matrix.skipped`.
    """
    plan = plan_matrix(configs, apps, traces)
    results, info = execute_plan_with_info(
        plan,
        jobs=jobs,
        cache=cache,
        profile=profile,
        context=context,
        fuse=fuse,
        compiled=compiled,
        batch=batch,
        shape_batch=shape_batch,
    )
    matrix = Matrix(skipped=list(plan.skipped), execution=info)
    for result in results:
        matrix.add(result)
    return matrix


def group_trace_names(traces: Sequence[Trace]) -> Dict[int, List[str]]:
    """Robot trace names keyed by activity group."""
    groups: Dict[int, List[str]] = defaultdict(list)
    for trace in traces:
        group = trace.metadata.get("group")
        if group is not None:
            groups[int(group)].append(trace.name)
    return dict(groups)
