"""Experiment runners: the paper's configuration matrix.

:func:`run_matrix` replays every (configuration, application, trace)
combination; the aggregation helpers compute the quantities the paper
reports — power relative to Oracle (Figures 5 and 7), savings fractions
(Section 5.2), and cross-configuration ratios (Sections 5.3-5.4).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.apps.base import SensingApplication
from repro.sim.configs import (
    AlwaysAwake,
    Batching,
    DutyCycling,
    Oracle,
    PredefinedActivity,
    Sidewinder,
)
from repro.sim.configs.base import SensingConfiguration
from repro.sim.results import SimulationResult
from repro.traces.base import Trace

#: Short labels used by the figure builders, matching the paper's axes.
CONFIG_LABELS = {
    "always_awake": "AA",
    "duty_cycling_2s": "DC-2",
    "duty_cycling_5s": "DC-5",
    "duty_cycling_10s": "DC-10",
    "duty_cycling_20s": "DC-20",
    "duty_cycling_30s": "DC-30",
    "batching_10s": "Ba-10",
    "predefined_activity": "PA",
    "sidewinder": "Sw",
    "oracle": "Oracle",
}


def paper_configurations(
    sleep_intervals: Sequence[float] = (2.0, 5.0, 10.0, 20.0, 30.0),
    batching_interval: float = 10.0,
) -> List[SensingConfiguration]:
    """The Figure 5 configuration set: AA, DC-*, Ba-10, PA, Sw, Oracle.

    The paper shows Batching at a 10 s interval only ("the other results
    were similar to Duty Cycling", Figure 5 footnote).
    """
    configs: List[SensingConfiguration] = [AlwaysAwake()]
    configs.extend(DutyCycling(interval) for interval in sleep_intervals)
    configs.append(Batching(batching_interval))
    configs.append(PredefinedActivity())
    configs.append(Sidewinder())
    configs.append(Oracle())
    return configs


@dataclass
class Matrix:
    """All results of one experiment sweep, with lookup helpers."""

    results: List[SimulationResult] = field(default_factory=list)

    def add(self, result: SimulationResult) -> None:
        """Record one simulation result."""
        self.results.append(result)

    def get(
        self, config_name: str, app_name: str, trace_name: str
    ) -> SimulationResult:
        """Exact lookup; raises ``KeyError`` when absent."""
        for r in self.results:
            if (
                r.config_name == config_name
                and r.app_name == app_name
                and r.trace_name == trace_name
            ):
                return r
        raise KeyError((config_name, app_name, trace_name))

    def select(
        self,
        config_name: str | None = None,
        app_name: str | None = None,
        predicate: Callable[[SimulationResult], bool] | None = None,
    ) -> List[SimulationResult]:
        """All results matching the given filters."""
        out = []
        for r in self.results:
            if config_name is not None and r.config_name != config_name:
                continue
            if app_name is not None and r.app_name != app_name:
                continue
            if predicate is not None and not predicate(r):
                continue
            out.append(r)
        return out

    def mean_power(
        self,
        config_name: str,
        app_name: str,
        trace_names: Iterable[str] | None = None,
    ) -> float:
        """Mean average power over the selected traces, mW."""
        names = set(trace_names) if trace_names is not None else None
        rows = [
            r
            for r in self.select(config_name, app_name)
            if names is None or r.trace_name in names
        ]
        if not rows:
            raise KeyError((config_name, app_name, trace_names))
        return sum(r.average_power_mw for r in rows) / len(rows)

    def relative_to_oracle(
        self,
        config_name: str,
        app_name: str,
        trace_names: Iterable[str] | None = None,
    ) -> float:
        """Mean power of a configuration divided by Oracle's (Figure 5)."""
        oracle = self.mean_power("oracle", app_name, trace_names)
        if oracle <= 0:
            return float("inf")
        return self.mean_power(config_name, app_name, trace_names) / oracle

    def savings_fraction(
        self,
        config_name: str,
        app_name: str,
        trace_names: Iterable[str] | None = None,
    ) -> float:
        """(AA - X) / (AA - Oracle), the Section 5.2 metric."""
        aa = self.mean_power("always_awake", app_name, trace_names)
        oracle = self.mean_power("oracle", app_name, trace_names)
        x = self.mean_power(config_name, app_name, trace_names)
        if aa - oracle <= 0:
            return 1.0
        return (aa - x) / (aa - oracle)


def run_matrix(
    configs: Sequence[SensingConfiguration],
    apps: Sequence[SensingApplication],
    traces: Sequence[Trace],
) -> Matrix:
    """Simulate every (config, app, trace) combination."""
    matrix = Matrix()
    for trace in traces:
        for app in apps:
            if any(channel not in trace.data for channel in app.channels):
                continue  # app's sensor absent from this trace
            for config in configs:
                matrix.add(config.run(app, trace))
    return matrix


def group_trace_names(traces: Sequence[Trace]) -> Dict[int, List[str]]:
    """Robot trace names keyed by activity group."""
    groups: Dict[int, List[str]] = defaultdict(list)
    for trace in traces:
        group = trace.metadata.get("group")
        if group is not None:
            groups[int(group)].append(trace.name)
    return dict(groups)
