"""Figure builders: the series behind the paper's Figures 5, 6 and 7.

Each builder returns nested dicts of plain floats so benchmarks can
print the series and assert on their shape (who wins, by what factor,
where crossovers fall).  All of them run their sweeps through
:func:`repro.eval.experiments.run_matrix`, so they accept the engine's
``jobs`` / ``cache`` knobs.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.apps import HeadbuttApp, StepsApp, TransitionsApp
from repro.eval.experiments import (
    CONFIG_LABELS,
    Matrix,
    group_trace_names,
    paper_configurations,
    run_matrix,
)
from repro.sim.configs import DutyCycling
from repro.traces.base import Trace
from repro.traces.library import human_corpus, robot_corpus

#: The sleep intervals shown on Figure 6's x axis.
FIGURE6_INTERVALS = (2.0, 5.0, 10.0, 20.0, 30.0)


def figure5_series(
    traces: Sequence[Trace] | None = None,
    jobs: int = 1,
    cache: bool = True,
    fuse: bool = True,
    compiled: bool = True,
    batch: bool = True,
    shape_batch: bool = True,
) -> Tuple[Dict[int, Dict[str, Dict[str, float]]], Matrix]:
    """Figure 5: power relative to Oracle, per robot group and app.

    Returns:
        ``(series, matrix)`` with ``series[group][app][label]`` the mean
        power of the labelled configuration divided by Oracle's mean
        power for that group and application.
    """
    traces = list(traces) if traces is not None else list(robot_corpus())
    apps = [StepsApp(), TransitionsApp(), HeadbuttApp()]
    matrix = run_matrix(
        paper_configurations(),
        apps,
        traces,
        jobs=jobs,
        cache=cache,
        fuse=fuse,
        compiled=compiled,
        batch=batch,
        shape_batch=shape_batch,
    )
    groups = group_trace_names(traces)
    series: Dict[int, Dict[str, Dict[str, float]]] = {}
    for group, names in sorted(groups.items()):
        series[group] = {}
        for app in apps:
            series[group][app.name] = {
                CONFIG_LABELS[config]: matrix.relative_to_oracle(
                    config, app.name, names
                )
                for config in CONFIG_LABELS
                if config != "oracle"
            }
    return series, matrix


def figure6_series(
    traces: Sequence[Trace] | None = None,
    intervals: Sequence[float] = FIGURE6_INTERVALS,
    jobs: int = 1,
    cache: bool = True,
    fuse: bool = True,
    compiled: bool = True,
    batch: bool = True,
    shape_batch: bool = True,
) -> Tuple[Dict[str, Dict[float, float]], Matrix]:
    """Figure 6: duty-cycling recall vs sleep interval at 90 % idle.

    Returns:
        ``(series, matrix)`` with ``series[app][interval]`` the mean
        recall over the group-1 runs (the matrix matches the other
        figure builders, so callers can inspect execution/cache info).
    """
    if traces is None:
        traces = [t for t in robot_corpus() if t.metadata.get("group") == 1]
    apps = [StepsApp(), TransitionsApp(), HeadbuttApp()]
    configs = [DutyCycling(interval) for interval in intervals]
    matrix = run_matrix(
        configs, apps, traces, jobs=jobs, cache=cache, fuse=fuse,
        compiled=compiled, batch=batch, shape_batch=shape_batch,
    )
    series: Dict[str, Dict[float, float]] = {app.name: {} for app in apps}
    for config, interval in zip(configs, intervals):
        for app in apps:
            rows = matrix.select(config.name, app.name)
            series[app.name][interval] = sum(r.recall for r in rows) / len(rows)
    return series, matrix


def figure7_series(
    traces: Sequence[Trace] | None = None,
    jobs: int = 1,
    cache: bool = True,
    fuse: bool = True,
    compiled: bool = True,
    batch: bool = True,
    shape_batch: bool = True,
) -> Tuple[Dict[str, Dict[str, float]], Matrix]:
    """Figure 7: step-detector power relative to Oracle on human traces.

    Shows AA, DC-10, Ba-10, PA and Sw, as the paper does ("For Duty
    Cycling and Batching we show only a sleep interval of 10 seconds").

    Returns:
        ``(series, matrix)`` with ``series[trace_scenario][label]``.
    """
    traces = list(traces) if traces is not None else list(human_corpus())
    app = StepsApp()
    matrix = run_matrix(
        paper_configurations(sleep_intervals=(10.0,)),
        [app],
        traces,
        jobs=jobs,
        cache=cache,
        fuse=fuse,
        compiled=compiled,
        batch=batch,
        shape_batch=shape_batch,
    )
    shown = ["always_awake", "duty_cycling_10s", "batching_10s",
             "predefined_activity", "sidewinder"]
    series: Dict[str, Dict[str, float]] = {}
    for trace in traces:
        scenario = str(trace.metadata.get("scenario", trace.name))
        series[scenario] = {
            CONFIG_LABELS[config]: matrix.relative_to_oracle(
                config, app.name, [trace.name]
            )
            for config in shown
        }
    return series, matrix
