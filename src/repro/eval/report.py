"""Plain-text rendering of tables and figure series.

The benchmark harness prints these so a run of ``pytest benchmarks/``
regenerates every table and figure of the paper as readable text.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width ASCII table."""
    columns = [list(map(str, col)) for col in zip(headers, *rows)]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            " | ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def render_table1(rows: Sequence[Tuple[str, float, str]]) -> str:
    """Render the Table 1 power profile."""
    return render_table(
        ["State", "Average Power (mW)", "Average Duration"],
        [(state, f"{mw:g}", duration) for state, mw, duration in rows],
        title="Table 1: Google Nexus 4 power profile",
    )


def render_table2(
    table: Mapping[str, Mapping[str, float]],
    paper: Mapping[str, Mapping[str, float]] | None = None,
) -> str:
    """Render Table 2 (measured, with the paper's values alongside)."""
    config_rows = ["oracle", "predefined_activity", "sidewinder"]
    apps = ["sirens", "music_journal", "phrase_detection"]
    headers = ["Wake-up Mechanism"] + [a for a in apps]
    rows = []
    for config in config_rows:
        row: List[object] = [config]
        for app in apps:
            cell = f"{table[config][app]:.1f}"
            if paper is not None:
                cell += f" (paper {paper[config][app]:g})"
            row.append(cell)
        rows.append(row)
    return render_table(
        headers, rows,
        title="Table 2: Average power for the audio applications (mW)",
    )


def render_figure5(series: Mapping[int, Mapping[str, Mapping[str, float]]]) -> str:
    """Render the Figure 5 bars: power over Oracle per group and app."""
    lines = ["Figure 5: power relative to Oracle (synthetic robot traces)"]
    for group in sorted(series):
        lines.append(f"  Group {group}:")
        for app, bars in series[group].items():
            cells = "  ".join(f"{label}={value:5.1f}x" for label, value in bars.items())
            lines.append(f"    {app:<12s} {cells}")
    return "\n".join(lines)


def render_figure6(series: Mapping[str, Mapping[float, float]]) -> str:
    """Render the Figure 6 recall curves."""
    lines = ["Figure 6: duty-cycling recall at 90% idle"]
    intervals = sorted(next(iter(series.values())).keys())
    header = "  interval(s):   " + "  ".join(f"{i:5g}" for i in intervals)
    lines.append(header)
    for app, curve in series.items():
        cells = "  ".join(f"{curve[i]:5.2f}" for i in intervals)
        lines.append(f"  {app:<12s}   {cells}")
    return "\n".join(lines)


def render_figure7(series: Mapping[str, Mapping[str, float]]) -> str:
    """Render the Figure 7 bars: human traces, step detector."""
    lines = ["Figure 7: power relative to Oracle (human traces, steps app)"]
    for scenario, bars in series.items():
        cells = "  ".join(f"{label}={value:5.1f}x" for label, value in bars.items())
        lines.append(f"  {scenario:<10s} {cells}")
    return "\n".join(lines)


def render_results(results: Sequence) -> str:
    """Render raw simulation results, one summary line each."""
    return "\n".join(r.summary() for r in results)


def render_skipped(skipped: Sequence) -> str:
    """Render a sweep's skipped (app, trace) pairs, one line each.

    Returns the empty string when nothing was skipped, so callers can
    print unconditionally without adding noise to clean sweeps.
    """
    if not skipped:
        return ""
    lines = ["skipped (trace lacks the app's sensors):"]
    lines.extend(f"  {cell.describe()}" for cell in skipped)
    return "\n".join(lines)
