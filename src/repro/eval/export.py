"""Machine-readable export of experiment results.

The report module renders tables for humans; this one writes the same
data as CSV and JSON so plotting scripts and downstream analyses can
consume a benchmark run without re-simulating.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Mapping, Sequence, Union

from repro.sim.results import SimulationResult

#: Columns of the flat per-simulation CSV.
RESULT_FIELDS = (
    "config",
    "app",
    "trace",
    "power_mw",
    "phone_mw",
    "hub_mw",
    "awake_fraction",
    "wakeups",
    "hub_wake_count",
    "recall",
    "precision",
    "duration_s",
)


def result_row(result: SimulationResult) -> dict:
    """Flatten one simulation result into a CSV/JSON row."""
    return {
        "config": result.config_name,
        "app": result.app_name,
        "trace": result.trace_name,
        "power_mw": round(result.average_power_mw, 4),
        "phone_mw": round(result.power.phone_mw, 4),
        "hub_mw": round(result.power.hub_mw, 4),
        "awake_fraction": round(result.power.awake_fraction, 6),
        "wakeups": result.wakeup_count,
        "hub_wake_count": result.hub_wake_count,
        "recall": round(result.recall, 6),
        "precision": round(result.precision, 6),
        "duration_s": round(result.power.duration_s, 3),
    }


def write_results_csv(
    results: Iterable[SimulationResult], path: Union[str, Path]
) -> Path:
    """Write simulation results as a flat CSV; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=RESULT_FIELDS)
        writer.writeheader()
        for result in results:
            writer.writerow(result_row(result))
    return path


def write_results_json(
    results: Iterable[SimulationResult], path: Union[str, Path]
) -> Path:
    """Write simulation results as a JSON array; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps([result_row(r) for r in results], indent=2, sort_keys=True)
    )
    return path


def write_series_json(
    series: Mapping, path: Union[str, Path], meta: Mapping | None = None
) -> Path:
    """Write a figure's nested series (plus optional metadata) as JSON.

    Non-string mapping keys (group numbers, sleep intervals) are
    stringified, matching what any JSON consumer expects.
    """
    def normalize(value):
        if isinstance(value, Mapping):
            return {str(k): normalize(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [normalize(v) for v in value]
        return value

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"series": normalize(series)}
    if meta:
        payload["meta"] = normalize(meta)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def read_results_csv(path: Union[str, Path]) -> Sequence[dict]:
    """Load a CSV written by :func:`write_results_csv` (strings kept)."""
    with Path(path).open() as handle:
        return list(csv.DictReader(handle))
