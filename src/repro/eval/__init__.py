"""Evaluation harness: metrics, experiment runners, table/figure builders.

Only the dependency-light pieces (:mod:`repro.eval.metrics`,
:mod:`repro.eval.report`) are re-exported here; the experiment runners
(:mod:`repro.eval.experiments`, :mod:`repro.eval.tables`,
:mod:`repro.eval.figures`) import the simulator and are used as
submodules to keep the import graph acyclic::

    from repro.eval.experiments import run_matrix
    from repro.eval.tables import build_table2
"""

from repro.eval.metrics import (
    MatchResult,
    match_events,
    precision_score,
    recall_score,
)

__all__ = [
    "MatchResult",
    "match_events",
    "precision_score",
    "recall_score",
]
