"""Detection metrics: event-level recall and precision (Section 4.3).

An event counts as *caught* when at least one detection overlaps the
event interval widened by the application's match tolerance; a detection
counts as *true* when it overlaps at least one such widened event.
Recall is the caught fraction of events; precision is the true fraction
of detections.  Both are defined as 1.0 over empty denominators (a trace
without events cannot be missed; a silent detector reports nothing
wrong).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from repro.apps.base import Detection
from repro.traces.base import GroundTruthEvent


@dataclass(frozen=True)
class MatchResult:
    """Outcome of matching detections against ground truth.

    Attributes:
        n_events: Number of ground-truth events.
        n_detections: Number of detections.
        caught_events: Indices of events with at least one detection.
        true_detections: Indices of detections matching some event.
    """

    n_events: int
    n_detections: int
    caught_events: Tuple[int, ...]
    true_detections: Tuple[int, ...]

    @property
    def recall(self) -> float:
        """Fraction of events caught (1.0 when there are no events)."""
        if self.n_events == 0:
            return 1.0
        return len(self.caught_events) / self.n_events

    @property
    def precision(self) -> float:
        """Fraction of detections that are true (1.0 when none)."""
        if self.n_detections == 0:
            return 1.0
        return len(self.true_detections) / self.n_detections

    @property
    def f1(self) -> float:
        """Harmonic mean of recall and precision."""
        p, r = self.precision, self.recall
        if p + r == 0:
            return 0.0
        return 2 * p * r / (p + r)


def _overlaps(
    span: Tuple[float, float], event: GroundTruthEvent, tolerance: float
) -> bool:
    start, end = span
    return end >= event.start - tolerance and start <= event.end + tolerance


def match_events(
    events: Sequence[GroundTruthEvent],
    detections: Sequence[Detection],
    tolerance_s: float,
) -> MatchResult:
    """Match detections against ground-truth events.

    Matching is by interval overlap with ``tolerance_s`` slack on both
    event edges.  The matching is not exclusive: one detection may catch
    several adjacent events and vice versa — appropriate for recall /
    precision over sparse events (the paper's metrics), as opposed to
    counting metrics.
    """
    caught: Set[int] = set()
    true_det: Set[int] = set()
    for event_index, event in enumerate(events):
        for det_index, detection in enumerate(detections):
            if _overlaps(detection.span, event, tolerance_s):
                caught.add(event_index)
                true_det.add(det_index)
    return MatchResult(
        n_events=len(events),
        n_detections=len(detections),
        caught_events=tuple(sorted(caught)),
        true_detections=tuple(sorted(true_det)),
    )


def recall_score(
    events: Sequence[GroundTruthEvent],
    detections: Sequence[Detection],
    tolerance_s: float,
) -> float:
    """Event-level recall (see :func:`match_events`)."""
    return match_events(events, detections, tolerance_s).recall


def precision_score(
    events: Sequence[GroundTruthEvent],
    detections: Sequence[Detection],
    tolerance_s: float,
) -> float:
    """Detection-level precision (see :func:`match_events`)."""
    return match_events(events, detections, tolerance_s).precision


def first_awake_at(
    time: float, awake_windows: Sequence[Tuple[float, float]]
) -> float | None:
    """Earliest instant at or after ``time`` the phone is fully awake.

    Returns None when the phone never wakes again.
    """
    for start, end in sorted(awake_windows):
        if end <= time:
            continue
        return max(start, time)
    return None


def detection_latencies(
    events: Sequence[GroundTruthEvent],
    detections: Sequence[Detection],
    tolerance_s: float,
    awake_windows: Sequence[Tuple[float, float]] | None = None,
) -> List[float]:
    """Per caught event, how long after the event it was *reported*.

    Section 5.4's timeliness argument made measurable: a detection's
    timestamps refer to signal time, but the application can only
    report once the phone is awake — under batching that is the next
    batch wake-up, up to a sleep interval later ("the user of a gesture
    recognition application would not be satisfied if the application
    detects the performed gesture after a delay of more than a couple
    of seconds").

    The latency of one event is the earliest matching detection's
    report time minus the event's end, floored at zero.  The report
    time is the first awake instant at or after the detection's signal
    time (``awake_windows`` omitted: the phone is treated as always
    responsive).  Missed events contribute nothing — combine with
    recall when comparing configurations.
    """
    latencies: List[float] = []
    for event in events:
        report_times = []
        for detection in detections:
            if not _overlaps(detection.span, event, tolerance_s):
                continue
            signal_time = max(detection.span[1], detection.time)
            if awake_windows is None:
                report_times.append(signal_time)
            else:
                report = first_awake_at(signal_time, awake_windows)
                if report is not None:
                    report_times.append(report)
        if report_times:
            latencies.append(max(0.0, min(report_times) - event.end))
    return latencies


def mean_detection_latency(
    events: Sequence[GroundTruthEvent],
    detections: Sequence[Detection],
    tolerance_s: float,
    awake_windows: Sequence[Tuple[float, float]] | None = None,
) -> float:
    """Mean of :func:`detection_latencies` (0.0 when nothing matched)."""
    latencies = detection_latencies(
        events, detections, tolerance_s, awake_windows
    )
    if not latencies:
        return 0.0
    return sum(latencies) / len(latencies)
