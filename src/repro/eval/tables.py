"""Table builders: the paper's Table 1 and Table 2.

Each builder returns plain data structures (lists of rows / nested
dicts) so benchmarks can both print them and assert on their shape.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.apps import MusicJournalApp, PhraseDetectionApp, SirenDetectorApp
from repro.eval.experiments import Matrix, run_matrix
from repro.power.phone import NEXUS4, PhonePowerProfile
from repro.sim.configs import Oracle, PredefinedActivity, Sidewinder
from repro.traces.base import Trace
from repro.traces.library import audio_corpus

#: Paper Table 2, milliwatts, for shape comparison (the starred siren
#: value includes the LM4F120).
PAPER_TABLE2 = {
    "oracle": {"sirens": 16.8, "music_journal": 27.2, "phrase_detection": 14.7},
    "predefined_activity": {
        "sirens": 51.9, "music_journal": 51.9, "phrase_detection": 51.9,
    },
    "sidewinder": {"sirens": 63.1, "music_journal": 32.3, "phrase_detection": 35.6},
}


def build_table1(
    profile: PhonePowerProfile = NEXUS4,
) -> List[Tuple[str, float, str]]:
    """Table 1 rows: (state, average power mW, average duration)."""
    return profile.table1_rows()


def build_table2(
    traces: Sequence[Trace] | None = None,
    sound_threshold: float | None = None,
    jobs: int = 1,
    cache: bool = True,
    fuse: bool = True,
    compiled: bool = True,
    batch: bool = True,
    shape_batch: bool = True,
) -> Tuple[Dict[str, Dict[str, float]], Matrix]:
    """Table 2: average power (mW) per audio app and wake-up mechanism.

    Args:
        traces: Audio traces to average over; defaults to the standard
            corpus.
        sound_threshold: Optional calibrated PA sound threshold.
        jobs: Worker processes for the sweep (1 = serial).
        cache: Enable engine memoization.
        fuse: Enable the fused hub fast path.
        compiled: Enable the compiled whole-trace hub path.
        batch: Enable tensor-major batching of same-condition cells.
        shape_batch: Enable shape-keyed batching across conditions that
            share one graph shape.

    Returns:
        ``(table, matrix)`` where ``table[config][app]`` is the mean
        power in mW and ``matrix`` holds the raw results.
    """
    traces = list(traces) if traces is not None else list(audio_corpus())
    pa = (
        PredefinedActivity(sound_threshold=sound_threshold)
        if sound_threshold is not None
        else PredefinedActivity()
    )
    configs = [Oracle(), pa, Sidewinder()]
    apps = [SirenDetectorApp(), MusicJournalApp(), PhraseDetectionApp()]
    matrix = run_matrix(
        configs, apps, traces, jobs=jobs, cache=cache, fuse=fuse,
        compiled=compiled, batch=batch, shape_batch=shape_batch,
    )
    table: Dict[str, Dict[str, float]] = {}
    for config in configs:
        table[config.name] = {
            app.name: matrix.mean_power(config.name, app.name) for app in apps
        }
    return table, matrix
