"""Exception hierarchy for the Sidewinder reproduction.

Every error raised by the library derives from :class:`SidewinderError` so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class SidewinderError(Exception):
    """Base class for every error raised by this library."""


class PipelineError(SidewinderError):
    """A processing pipeline is structurally invalid.

    Raised when a pipeline cannot be compiled to the intermediate
    language: e.g. it has no branches, does not converge to a single
    output branch, or chains algorithms with incompatible stream kinds.
    """


class CompileError(PipelineError):
    """Compilation of a pipeline into intermediate code failed."""


class ILSyntaxError(SidewinderError):
    """Intermediate-language text could not be parsed."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class ILValidationError(SidewinderError):
    """An intermediate-language program is syntactically well formed but
    semantically invalid (dangling references, cycles, wrong arity, more
    than one OUT, ...)."""


class UnknownAlgorithmError(SidewinderError):
    """The hub runtime has no implementation registered for an opcode."""

    def __init__(self, opcode: str):
        self.opcode = opcode
        super().__init__(
            f"no algorithm registered for opcode {opcode!r}; "
            "the wake-up condition cannot run on this sensor hub"
        )


class UnknownChannelError(SidewinderError):
    """A pipeline references a sensor channel the device does not have."""

    def __init__(self, channel: str):
        self.channel = channel
        super().__init__(f"unknown sensor channel {channel!r}")


class ParameterError(SidewinderError):
    """An algorithm was configured with invalid parameters."""


class FeasibilityError(SidewinderError):
    """A wake-up condition cannot run in real time on any available MCU."""


class HubExecutionError(SidewinderError):
    """The hub runtime could not execute a wake-up condition.

    Raised when the data handed to the interpreter does not match the
    condition's needs — most commonly a sensor channel the condition
    reads is absent from the feed or the trace.
    """


class SimulationError(SidewinderError):
    """The trace-driven simulator was configured inconsistently."""


class FaultInjectionError(SimulationError):
    """A fault plan or reliability policy is inconsistent.

    Raised at construction time — fault injection is meant for
    deterministic robustness experiments, so a malformed schedule is a
    configuration bug, never something to paper over at runtime.
    """


class TraceError(SidewinderError):
    """A sensor trace is malformed or incompatible with the request."""


class ServiceError(SidewinderError):
    """The fleet serving layer was configured inconsistently.

    Raised at construction time for invalid service parameters (a
    non-positive queue capacity, a reserve larger than the queue, a
    negative TTL).  Per-request problems — a full queue, an exhausted
    quota, an invalid IL submission — are never raised: they come back
    as structured :class:`~repro.serve.submission.Rejected` /
    :class:`~repro.serve.submission.Failed` responses so one tenant's
    bad input cannot poison another tenant's batch.
    """


class JournalError(ServiceError):
    """The service's durability tier failed an I/O or integrity check.

    Raised when a write-ahead journal append/flush fails (possibly
    injected by a :class:`~repro.serve.faults.ServiceFaultPlan`) or a
    spilled result fails its CRC on fault-back.  The service converts
    journal failures at admission time into structured
    ``Rejected(reason="journal_unavailable")`` responses and degrades;
    it never lets a durability failure poison completed work.
    """


class ServiceKilled(SidewinderError):
    """A :class:`~repro.serve.faults.ServiceFaultPlan` killed the service.

    Models abrupt process death at a planned submission or pump
    boundary: un-flushed journal bytes are discarded (or torn
    mid-record) exactly as a real crash would leave them.  Harnesses
    catch this and exercise :meth:`ConditionService.recover`.
    """
