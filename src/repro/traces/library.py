"""Standard corpora: the trace sets the paper's evaluation replays.

* :func:`robot_corpus` — 18 runs: 9 in group 1 (90 % idle), 6 in group 2
  (50 % idle), 3 in group 3 (10 % idle), matching Section 4.1 ("the
  robot executed 18 different runs: 9 for group 1, 6 for group 2 and 3
  for group 3").
* :func:`human_corpus` — 3 traces: commute, retail, office.
* :func:`audio_corpus` — 3 traces: office, coffee shop, outdoors.

Corpora are deterministic functions of their base seed, so every
benchmark run replays the same traces.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from repro.traces.audio import AudioEnvironment, AudioTraceConfig, generate_audio_trace
from repro.traces.base import Trace
from repro.traces.human import HumanScenario, HumanTraceConfig, generate_human_trace
from repro.traces.robot import RobotRunConfig, generate_robot_run

#: (group, run count) pairs per Section 4.1.
ROBOT_GROUP_RUNS: Tuple[Tuple[int, int], ...] = ((1, 9), (2, 6), (3, 3))


@lru_cache(maxsize=8)
def robot_corpus(
    duration_s: float = 600.0, base_seed: int = 1000
) -> Tuple[Trace, ...]:
    """The 18 synthetic robot runs (9 / 6 / 3 across groups 1-3)."""
    traces: List[Trace] = []
    seed = base_seed
    for group, count in ROBOT_GROUP_RUNS:
        for _ in range(count):
            traces.append(
                generate_robot_run(
                    RobotRunConfig(group=group, duration_s=duration_s, seed=seed)
                )
            )
            seed += 1
    return tuple(traces)


def robot_group(
    group: int, duration_s: float = 600.0, base_seed: int = 1000
) -> Tuple[Trace, ...]:
    """Runs of one activity group from the standard robot corpus."""
    return tuple(
        t for t in robot_corpus(duration_s, base_seed) if t.metadata["group"] == group
    )


@lru_cache(maxsize=8)
def human_corpus(
    duration_s: float = 1200.0, base_seed: int = 2000
) -> Tuple[Trace, ...]:
    """The three human traces: commute, retail, office."""
    return tuple(
        generate_human_trace(
            HumanTraceConfig(scenario=scenario, duration_s=duration_s, seed=base_seed + i)
        )
        for i, scenario in enumerate(HumanScenario)
    )


@lru_cache(maxsize=8)
def audio_corpus(
    duration_s: float = 600.0, base_seed: int = 3000
) -> Tuple[Trace, ...]:
    """The three audio traces: office, coffee shop, outdoors."""
    return tuple(
        generate_audio_trace(
            AudioTraceConfig(environment=env, duration_s=duration_s, seed=base_seed + i)
        )
        for i, env in enumerate(AudioEnvironment)
    )
