"""Append-only stream buffers: traces that grow as devices push chunks.

The serving stack's traces are fixed recordings; streaming ingestion
(:mod:`repro.serve.ingest`) instead assembles a trace *incrementally*
from timestamped sensor chunks a device pushes over time.
:class:`StreamBuffer` is that growing-``Trace`` abstraction: per
channel an append-only sample column on the canonical uniform timeline
(sample ``i`` of a channel lives at ``i / rate``, exactly where
:meth:`repro.traces.base.Trace.times` puts it), with sequence-numbered,
idempotent appends so journal replay after a crash cannot double-apply
a chunk.

The central identity: for any cursor, the per-channel spans handed out
by :meth:`spans_since` concatenate to bitwise the same arrays
:meth:`to_trace` produces at the end — which is what lets incremental
evaluation over arrival spans be digest-identical to replaying the
final assembled trace whole.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import TraceError
from repro.sensors.samples import Chunk, StreamKind
from repro.traces.base import Trace


class _Column:
    """Append-only float64 sample column with a cached concatenation."""

    __slots__ = ("_parts", "_cache", "_n")

    def __init__(self) -> None:
        self._parts: List[np.ndarray] = []
        self._cache: Optional[np.ndarray] = None
        self._n = 0

    def append(self, array: np.ndarray) -> None:
        if not len(array):
            return
        self._parts.append(np.asarray(array, dtype=np.float64))
        self._cache = None
        self._n += len(array)

    def __len__(self) -> int:
        return self._n

    @property
    def data(self) -> np.ndarray:
        if self._cache is None:
            self._cache = (
                np.concatenate(self._parts)
                if self._parts
                else np.empty(0, dtype=np.float64)
            )
            self._parts = [self._cache]
        return self._cache


class StreamBuffer:
    """One device's growing multi-channel recording.

    Args:
        name: Stream identifier — becomes the assembled trace's name,
            so it plays the role a trace name plays everywhere else
            (routing keys, result digests, store lookups).
        rate_hz: Sampling rate per channel name; fixes the channel set
            for the stream's lifetime.

    Chunks append through :meth:`push` with a per-stream sequence
    number; ``seq`` must be the next unseen number (re-pushing an
    already-applied ``seq`` — journal replay, reconnect retries — is a
    counted no-op, a gap is an error).  Channels within one stream
    should advance roughly together: the assembled :meth:`to_trace`
    enforces the ``Trace`` consistency contract between every
    channel's sample count and the stream duration.
    """

    def __init__(self, name: str, rate_hz: Dict[str, float]):
        if not rate_hz:
            raise TraceError(f"stream {name!r} has no channels")
        for channel, rate in rate_hz.items():
            if not rate or rate <= 0:
                raise TraceError(
                    f"stream {name!r}: channel {channel!r} has no sampling rate"
                )
        self.name = name
        self.rate_hz: Dict[str, float] = dict(rate_hz)
        self.next_seq = 0
        self._columns: Dict[str, _Column] = {
            channel: _Column() for channel in rate_hz
        }

    @property
    def channels(self) -> Tuple[str, ...]:
        """Channel names, sorted (matching :attr:`Trace.channels`)."""
        return tuple(sorted(self.rate_hz))

    def counts(self) -> Dict[str, int]:
        """Samples appended so far, per channel — the cursor currency."""
        return {name: len(column) for name, column in self._columns.items()}

    @property
    def total_samples(self) -> int:
        """Samples appended so far across every channel."""
        return sum(len(column) for column in self._columns.values())

    @property
    def end_seconds(self) -> float:
        """Timeline end: the furthest any channel has been filled."""
        return max(
            len(self._columns[name]) / rate
            for name, rate in self.rate_hz.items()
        )

    @property
    def watermark_seconds(self) -> float:
        """Fully-covered span: the least-filled channel's extent."""
        return min(
            len(self._columns[name]) / rate
            for name, rate in self.rate_hz.items()
        )

    def push(self, seq: int, samples: Dict[str, np.ndarray]) -> bool:
        """Append one sequence-numbered chunk of per-channel samples.

        Args:
            seq: The chunk's per-stream sequence number.
            samples: New samples per channel name; channels absent from
                the chunk simply receive nothing this push.

        Returns:
            True when the chunk was applied; False when ``seq`` was
            already applied (idempotent duplicate — journal replay or a
            device retrying after reconnect).

        Raises:
            TraceError: on a sequence gap or an unknown channel.
        """
        if seq < self.next_seq:
            return False
        if seq > self.next_seq:
            raise TraceError(
                f"stream {self.name!r}: chunk seq {seq} arrived before "
                f"seq {self.next_seq} (chunks must append in order)"
            )
        unknown = sorted(set(samples) - set(self.rate_hz))
        if unknown:
            raise TraceError(
                f"stream {self.name!r}: unknown channels {unknown}"
            )
        for name, values in samples.items():
            self._columns[name].append(np.asarray(values, dtype=np.float64))
        self.next_seq += 1
        return True

    def channel_span(self, name: str, start: int, stop: int) -> Chunk:
        """Items ``[start, stop)`` of one channel as a SCALAR chunk.

        Timestamps are computed on the canonical uniform grid
        (``arange(start, stop) / rate``), bitwise the slice of the
        assembled trace's :meth:`~repro.traces.base.Trace.times`.
        """
        rate = self.rate_hz[name]
        column = self._columns[name]
        stop = min(stop, len(column))
        if stop <= start:
            return Chunk.empty(StreamKind.SCALAR, rate)
        return Chunk.view(
            StreamKind.SCALAR,
            np.arange(start, stop, dtype=np.float64) / rate,
            column.data[start:stop],
            rate,
        )

    def spans_since(
        self, cursor: Dict[str, int]
    ) -> Tuple[Dict[str, Chunk], Dict[str, int]]:
        """New per-channel spans past a cursor, plus the moved cursor.

        The cursor maps channel names to already-consumed item counts
        (missing channels count as 0).  Concatenating the spans a
        cursor walks through reproduces every channel array exactly.
        """
        spans: Dict[str, Chunk] = {}
        moved: Dict[str, int] = {}
        for name, column in self._columns.items():
            start = cursor.get(name, 0)
            stop = len(column)
            spans[name] = self.channel_span(name, start, stop)
            moved[name] = max(start, stop)
        return spans, moved

    def to_trace(self, name: Optional[str] = None) -> Trace:
        """Assemble everything pushed so far into a plain :class:`Trace`.

        The duration is the timeline end (the furthest-filled channel);
        ``Trace`` validation then enforces that every other channel is
        consistent with it.  The result carries no ground-truth events
        — a live stream has none — and replaying it whole through the
        ordinary serving path is the reference the streamed evaluation
        is asserted bit-identical against.
        """
        if self.total_samples == 0:
            raise TraceError(f"stream {self.name!r} has no samples")
        return Trace(
            name=name or self.name,
            data={
                channel: self._columns[channel].data
                for channel in self.rate_hz
            },
            rate_hz=dict(self.rate_hz),
            duration=self.end_seconds,
            metadata={"kind": "stream", "chunks": self.next_seq},
        )
