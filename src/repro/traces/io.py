"""Trace persistence: save/load as ``.npz`` plus a JSON sidecar.

Sample arrays go into a compressed ``.npz``; events and metadata go into
a human-readable ``.json`` next to it.  Round-tripping preserves ground
truth exactly (floats included, via JSON's double precision).

Saves are crash-atomic: each file is written to a temporary sibling and
``os.replace()``d into place, so a process killed mid-save never leaves
a torn file behind — at worst the old contents survive.  The serving
layer's spill-to-disk result store (:mod:`repro.serve.persist`) reuses
:func:`atomic_write` for the same guarantee.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Union

import numpy as np

from repro.errors import TraceError
from repro.traces.base import GroundTruthEvent, Trace


def _sidecar(path: Path) -> Path:
    return path.with_suffix(".json")


@contextmanager
def atomic_write(path: Union[str, Path]) -> Iterator[Path]:
    """Yield a temporary sibling of ``path``; rename it over ``path``.

    The caller writes the full contents to the yielded temp path; on
    clean exit it is ``os.replace()``d onto ``path`` (atomic on POSIX),
    on any exception the temp file is removed and ``path`` is left
    untouched.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        yield tmp
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


def save_trace(trace: Trace, path: Union[str, Path]) -> Path:
    """Write a trace to ``path`` (``.npz``) and its JSON sidecar.

    Both files are written crash-atomically (temp file +
    ``os.replace``).  Returns the ``.npz`` path actually written.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    with atomic_write(path) as tmp:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **trace.data)
    manifest = {
        "name": trace.name,
        "duration": trace.duration,
        "rate_hz": trace.rate_hz,
        "metadata": trace.metadata,
        "events": [
            {
                "label": e.label,
                "start": e.start,
                "end": e.end,
                "metadata": {k: _jsonable(v) for k, v in e.metadata},
            }
            for e in trace.events
        ],
    }
    with atomic_write(_sidecar(path)) as tmp:
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    return path


def load_trace(path: Union[str, Path]) -> Trace:
    """Load a trace written by :func:`save_trace`.

    Raises:
        TraceError: when the sidecar is missing or inconsistent.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    sidecar = _sidecar(path)
    if not path.exists() or not sidecar.exists():
        raise TraceError(f"trace files missing: {path} / {sidecar}")
    manifest = json.loads(sidecar.read_text())
    with np.load(path) as archive:
        data = {name: archive[name] for name in archive.files}
    events = [
        GroundTruthEvent(
            entry["label"],
            float(entry["start"]),
            float(entry["end"]),
            tuple(sorted((k, _tupled(v)) for k, v in entry["metadata"].items())),
        )
        for entry in manifest["events"]
    ]
    return Trace(
        name=manifest["name"],
        data=data,
        rate_hz={k: float(v) for k, v in manifest["rate_hz"].items()},
        duration=float(manifest["duration"]),
        events=events,
        metadata=manifest.get("metadata", {}),
    )


def _jsonable(value: object) -> object:
    if isinstance(value, tuple):
        return list(value)
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value


def _tupled(value: object) -> object:
    if isinstance(value, list):
        return tuple(value)
    return value
