"""Trace persistence: save/load as ``.npz`` plus a JSON sidecar.

Sample arrays go into a compressed ``.npz``; events and metadata go into
a human-readable ``.json`` next to it.  Round-tripping preserves ground
truth exactly (floats included, via JSON's double precision).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import TraceError
from repro.traces.base import GroundTruthEvent, Trace


def _sidecar(path: Path) -> Path:
    return path.with_suffix(".json")


def save_trace(trace: Trace, path: Union[str, Path]) -> Path:
    """Write a trace to ``path`` (``.npz``) and its JSON sidecar.

    Returns the ``.npz`` path actually written.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **trace.data)
    manifest = {
        "name": trace.name,
        "duration": trace.duration,
        "rate_hz": trace.rate_hz,
        "metadata": trace.metadata,
        "events": [
            {
                "label": e.label,
                "start": e.start,
                "end": e.end,
                "metadata": {k: _jsonable(v) for k, v in e.metadata},
            }
            for e in trace.events
        ],
    }
    _sidecar(path).write_text(json.dumps(manifest, indent=2, sort_keys=True))
    return path


def load_trace(path: Union[str, Path]) -> Trace:
    """Load a trace written by :func:`save_trace`.

    Raises:
        TraceError: when the sidecar is missing or inconsistent.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    sidecar = _sidecar(path)
    if not path.exists() or not sidecar.exists():
        raise TraceError(f"trace files missing: {path} / {sidecar}")
    manifest = json.loads(sidecar.read_text())
    with np.load(path) as archive:
        data = {name: archive[name] for name in archive.files}
    events = [
        GroundTruthEvent(
            entry["label"],
            float(entry["start"]),
            float(entry["end"]),
            tuple(sorted((k, _tupled(v)) for k, v in entry["metadata"].items())),
        )
        for entry in manifest["events"]
    ]
    return Trace(
        name=manifest["name"],
        data=data,
        rate_hz={k: float(v) for k, v in manifest["rate_hz"].items()},
        duration=float(manifest["duration"]),
        events=events,
        metadata=manifest.get("metadata", {}),
    )


def _jsonable(value: object) -> object:
    if isinstance(value, tuple):
        return list(value)
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value


def _tupled(value: object) -> object:
    if isinstance(value, list):
        return tuple(value)
    return value
