"""Human accelerometer traces (paper Sections 4.1 and 5.5).

The paper collected six hours of accelerometer data from three subjects
during routine days — a public-transit commute, retail work and office
work — with 20-37 % of each trace spent walking.  Section 5.5's key
observation is that humans produce a *wide range of non-event motion*
(vehicle vibration, fidgeting, posture shifts, handling the phone) that
triggers generic significant-motion detectors, so Predefined Activity
performs poorly on human traces while Sidewinder's tuned conditions
still reach >=91 % of the available savings.

The generators here therefore interleave walking bouts (the events of
interest for the step application) with scenario-specific confounder
motion that has energy but lacks the step signature.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import TraceError
from repro.sensors.channels import ACCEL_RATE_HZ
from repro.traces.base import GroundTruthEvent, Trace
from repro.traces.signals import (
    add_segment,
    GRAVITY,
    low_pass_noise,
    sample_count,
    walking_axis,
    white_noise,
)


class HumanScenario(enum.Enum):
    """The three recorded day types (paper Section 4.1)."""

    COMMUTE = "commute"
    RETAIL = "retail"
    OFFICE = "office"


#: Walking fraction per scenario — "between 20% and 37% of each trace is
#: spent walking".  Retail work walks the most, the office the least.
WALKING_FRACTION = {
    HumanScenario.COMMUTE: 0.28,
    HumanScenario.RETAIL: 0.37,
    HumanScenario.OFFICE: 0.20,
}

#: Fraction of non-walking time covered by confounder motion bursts.
CONFOUNDER_FRACTION = {
    HumanScenario.COMMUTE: 0.55,  # bus/subway vibration dominates the ride
    HumanScenario.RETAIL: 0.35,  # shelf work, reaching, turning
    HumanScenario.OFFICE: 0.15,  # typing, chair fidgeting
}

_IDLE_NOISE = 0.05


@dataclass(frozen=True)
class HumanTraceConfig:
    """Configuration for one synthetic human day segment.

    Attributes:
        scenario: Which day type to synthesize.
        duration_s: Trace length (the paper used ~2 h per subject; the
            default is 1200 s — the activity mix is what matters).
        seed: RNG seed.
    """

    scenario: HumanScenario
    duration_s: float = 1200.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration_s < 120.0:
            raise TraceError("human traces shorter than 120 s are not meaningful")


def _confounder_burst(
    rng: np.random.Generator,
    scenario: HumanScenario,
    duration: float,
    rate: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Non-event motion with energy but no step signature.

    Returns per-axis additive signals.  Amplitudes are chosen to exceed
    a significant-motion detector's sensitivity while staying outside
    the step detector's filtered-peak band most of the time.
    """
    n = sample_count(duration, rate)
    t = np.arange(n) / rate
    if scenario is HumanScenario.COMMUTE:
        # Vehicle vibration: broadband 8-15 Hz shake on all axes.
        f = rng.uniform(8.0, 15.0)
        shake = 0.9 * np.sin(2 * np.pi * f * t + rng.uniform(0, 2 * np.pi))
        shake += white_noise(rng, n, 0.5)
        bumps = np.zeros(n)
        n_bumps = max(1, int(duration / rng.uniform(4.0, 10.0)))
        for _ in range(n_bumps):
            i = rng.integers(0, max(1, n - 25))
            bumps[i : i + 25] += rng.uniform(1.2, 2.2) * np.hanning(25)
        return shake * 0.6, shake * 0.4 + bumps, shake * 0.8
    if scenario is HumanScenario.RETAIL:
        # Reaching/turning: slow large-amplitude swings.
        swing = 1.6 * low_pass_noise(rng, n, 2.0, smooth=30)
        tilt = 1.2 * low_pass_noise(rng, n, 2.0, smooth=45)
        return swing, tilt, 0.8 * low_pass_noise(rng, n, 2.0, smooth=35)
    # Office: small fidgets and typing tremor.
    tremor = 0.35 * low_pass_noise(rng, n, 1.5, smooth=6)
    fidget = np.zeros(n)
    n_fidgets = max(1, int(duration / rng.uniform(6.0, 12.0)))
    for _ in range(n_fidgets):
        i = rng.integers(0, max(1, n - 15))
        fidget[i : i + 15] += rng.uniform(0.8, 1.6) * np.hanning(15)
    return tremor + fidget * 0.5, tremor, tremor + fidget


def generate_human_trace(config: HumanTraceConfig) -> Trace:
    """Synthesize one human accelerometer trace.

    Ground truth: ``walking`` bouts (with ``step_times``) are the events
    of interest; confounder bursts are logged as ``other_motion`` so
    experiments can report what triggered false wake-ups.
    """
    rng = np.random.default_rng(config.seed)
    rate = ACCEL_RATE_HZ
    n_total = sample_count(config.duration_s, rate)

    x = white_noise(rng, n_total, _IDLE_NOISE)
    y = white_noise(rng, n_total, _IDLE_NOISE) + 0.0
    z = white_noise(rng, n_total, _IDLE_NOISE) + GRAVITY

    events: List[GroundTruthEvent] = []

    # Schedule walking bouts.
    walk_budget = config.duration_s * WALKING_FRACTION[config.scenario]
    bouts: List[float] = []
    while walk_budget > 8.0:
        bout = float(min(walk_budget, rng.uniform(20.0, 60.0)))
        bouts.append(bout)
        walk_budget -= bout

    # Schedule confounder bursts in the remaining time.
    non_walk = config.duration_s - sum(bouts)
    confounder_budget = non_walk * CONFOUNDER_FRACTION[config.scenario]
    bursts: List[float] = []
    while confounder_budget > 4.0:
        burst = float(min(confounder_budget, rng.uniform(6.0, 25.0)))
        bursts.append(burst)
        confounder_budget -= burst

    # Interleave: walking bouts and confounder bursts in random order,
    # idle gaps between them.
    blocks = [("walk", d) for d in bouts] + [("confounder", d) for d in bursts]
    order = rng.permutation(len(blocks))
    blocks = [blocks[i] for i in order]
    idle_total = config.duration_s - sum(d for _, d in blocks)
    gaps = rng.dirichlet(np.full(len(blocks) + 1, 2.0)) * max(idle_total, 0.0)

    cursor = float(gaps[0])
    for (kind, block_duration), gap_after in zip(blocks, gaps[1:]):
        start = cursor
        end = min(start + block_duration, config.duration_s)
        if end <= start:
            break
        i0 = sample_count(start, rate)
        i1 = min(n_total, sample_count(end, rate))
        if kind == "walk":
            bout, steps = walking_axis(
                rng,
                end - start,
                rate,
                step_rate_hz=rng.uniform(1.7, 2.1),
                peak_amplitude=3.5,
                noise_sigma=0.3,
            )
            add_segment(x, i0, bout)
            t_local = np.arange(i1 - i0) / rate
            add_segment(z, i0, 0.5 * np.sin(2 * np.pi * 1.9 * t_local))
            events.append(
                GroundTruthEvent.make(
                    "walking",
                    start,
                    end,
                    step_times=tuple(float(start + s) for s in steps),
                )
            )
        else:
            cx, cy, cz = _confounder_burst(
                rng, config.scenario, end - start, rate
            )
            add_segment(x, i0, cx)
            add_segment(y, i0, cy)
            add_segment(z, i0, cz)
            events.append(GroundTruthEvent.make("other_motion", start, end))
        cursor = end + float(gap_after)

    return Trace(
        name=f"human/{config.scenario.value}/seed{config.seed}",
        data={"ACC_X": x, "ACC_Y": y, "ACC_Z": z},
        rate_hz={"ACC_X": rate, "ACC_Y": rate, "ACC_Z": rate},
        duration=config.duration_s,
        events=events,
        metadata={
            "kind": "human",
            "scenario": config.scenario.value,
            "walking_fraction": WALKING_FRACTION[config.scenario],
            "seed": config.seed,
        },
    )
