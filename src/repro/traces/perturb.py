"""Sensor-fault injection for robustness experiments.

Real continuous-sensing deployments see sensors glitch: samples stick
at the last value (I2C bus stalls, saturated parts), bursts of noise
(connector chatter, EMI), or whole dropout windows.  These functions
perturb a trace's sample arrays while leaving its ground truth intact,
so experiments can ask *what happens to recall and power when the
sensor misbehaves* — the kind of failure-injection study a hub vendor
would run before hardwiring conditions into silicon.

All perturbations are pure: they return a new
:class:`~repro.traces.base.Trace` and never mutate the input.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TraceError
from repro.traces.base import Trace


def _copy_data(trace: Trace) -> dict:
    return {name: values.copy() for name, values in trace.data.items()}


def _span_indices(
    trace: Trace, channel: str, span: Tuple[float, float]
) -> Tuple[int, int]:
    start, end = span
    if end <= start:
        raise TraceError(f"empty fault span {span}")
    rate = trace.rate_hz[channel]
    n = len(trace.data[channel])
    i0 = max(0, int(round(start * rate)))
    i1 = min(n, int(round(end * rate)))
    return i0, i1


def _rebuild(trace: Trace, data: dict, suffix: str) -> Trace:
    return Trace(
        name=f"{trace.name}+{suffix}",
        data=data,
        rate_hz=dict(trace.rate_hz),
        duration=trace.duration,
        events=list(trace.events),
        metadata={**trace.metadata, "fault": suffix},
    )


def stuck_sensor(
    trace: Trace,
    channel: str,
    spans: Sequence[Tuple[float, float]],
) -> Trace:
    """Hold the channel at its last good value over each span.

    Models a saturated or bus-stalled sensor: samples keep arriving at
    the nominal rate but carry a frozen value.
    """
    data = _copy_data(trace)
    samples = data[channel]
    for span in spans:
        i0, i1 = _span_indices(trace, channel, span)
        if i1 > i0:
            held = samples[i0 - 1] if i0 > 0 else samples[0]
            samples[i0:i1] = held
    return _rebuild(trace, data, "stuck")


def noise_burst(
    trace: Trace,
    channel: str,
    spans: Sequence[Tuple[float, float]],
    sigma: float,
    seed: int = 0,
) -> Trace:
    """Add Gaussian noise of the given sigma over each span."""
    if sigma < 0:
        raise TraceError(f"noise sigma must be non-negative, got {sigma}")
    rng = np.random.default_rng(seed)
    data = _copy_data(trace)
    samples = data[channel]
    for span in spans:
        i0, i1 = _span_indices(trace, channel, span)
        samples[i0:i1] += rng.normal(0.0, sigma, i1 - i0)
    return _rebuild(trace, data, "noise")


def dropout(
    trace: Trace,
    channel: str,
    spans: Sequence[Tuple[float, float]],
    fill: float = 0.0,
) -> Trace:
    """Replace the channel with a constant fill value over each span.

    Models the driver substituting zeros (or a sentinel) for samples it
    never received.
    """
    data = _copy_data(trace)
    samples = data[channel]
    for span in spans:
        i0, i1 = _span_indices(trace, channel, span)
        samples[i0:i1] = fill
    return _rebuild(trace, data, "dropout")


def random_fault_spans(
    trace: Trace,
    total_fault_s: float,
    span_s: float,
    seed: int = 0,
    avoid_events: bool = False,
) -> List[Tuple[float, float]]:
    """Draw non-overlapping fault spans across the trace.

    Args:
        trace: The trace to place spans in.
        total_fault_s: Aggregate fault time to place.
        span_s: Length of each individual span.
        seed: RNG seed.
        avoid_events: When True, spans are redrawn (best effort) so they
            do not overlap any ground-truth event — separating "fault
            during idle" from "fault during the event" experiments.
    """
    if span_s <= 0 or total_fault_s < 0:
        raise TraceError("span_s must be positive and total_fault_s >= 0")
    if span_s > trace.duration:
        raise TraceError(
            f"fault span length {span_s}s exceeds trace duration "
            f"{trace.duration}s; no start position exists"
        )
    rng = np.random.default_rng(seed)
    spans: List[Tuple[float, float]] = []
    budget = total_fault_s
    attempts = 0
    while budget >= span_s and attempts < 1000:
        attempts += 1
        start = float(rng.uniform(0.0, trace.duration - span_s))
        candidate = (start, start + span_s)
        if any(candidate[1] > a and candidate[0] < b for a, b in spans):
            continue
        if avoid_events and any(
            candidate[1] > e.start and candidate[0] < e.end
            for e in trace.events
        ):
            continue
        spans.append(candidate)
        budget -= span_s
    return sorted(spans)
