"""Scripted AIBO robot runs (paper Section 4.1, Figure 4).

The paper mounted a prototype phone on an AIBO ERS-210 and scripted runs
mixing five actions — standing idle, walking, sit-to-stand, stand-to-sit
and headbutts — at three activity levels (groups spending 90 %, 50 % and
10 % of the time standing idle; the active remainder split 73 % walking,
24 % posture transitions, 3 % headbutts).  The robot's action log is the
ground truth.

This module reproduces that setup synthetically: a seeded scheduler
generates the action script, an accelerometer synthesizer renders it at
50 Hz with the paper's acceleration signatures, and the script itself
becomes the ground-truth event log.

Signal signatures (Section 3.7.1):

* *standing*: gravity on z (~9.8), y near 0;
* *sitting*: device angled — z ~8.5, y ~4.5;
* *walking*: quasi-periodic x-axis pulses peaking ~3.5 m/s^2, ~2 steps/s;
* *transition*: 1.5 s smooth y/z gravity ramp between postures;
* *headbutt*: 0.6 s y-axis dip to about -5 m/s^2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import TraceError
from repro.sensors.channels import ACCEL_RATE_HZ
from repro.traces.base import GroundTruthEvent, Trace
from repro.traces.signals import (
    add_segment,
    GRAVITY,
    orientation_ramp,
    sample_count,
    spike,
    walking_axis,
    white_noise,
)

#: Standing-idle fraction per activity group (paper Section 4.1).
GROUP_IDLE_FRACTION = {1: 0.90, 2: 0.50, 3: 0.10}

#: Split of active time across actions (paper Section 4.1).
ACTIVITY_SPLIT = {"walking": 0.73, "transition": 0.24, "headbutt": 0.03}

#: Action durations.
TRANSITION_S = 1.5
HEADBUTT_S = 0.6

#: Gravity components per posture: (y, z).
STANDING_ORIENTATION = (0.0, GRAVITY)
SITTING_ORIENTATION = (4.5, 8.5)

#: Walking parameters.
STEP_RATE_HZ = 2.0
STEP_PEAK = 3.5

#: Headbutt y-axis dip: the detector band is [-6.75, -3.75] m/s^2.
HEADBUTT_DEPTH_MEAN = -5.2
HEADBUTT_DEPTH_JITTER = 0.6

_IDLE_NOISE = 0.06
_TRANSITION_JITTER = 0.25


@dataclass(frozen=True)
class RobotRunConfig:
    """Configuration for one synthetic robot run.

    Attributes:
        group: Activity group 1-3 (90 / 50 / 10 % standing idle).
        duration_s: Run length; the paper's live runs took ~1 h, the
            default here is 600 s for tractable simulation (the activity
            *mix* is what matters, not absolute length).
        seed: RNG seed; two runs with the same config are identical.
    """

    group: int
    duration_s: float = 600.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.group not in GROUP_IDLE_FRACTION:
            raise TraceError(f"robot group must be 1, 2 or 3, got {self.group}")
        if self.duration_s < 60.0:
            raise TraceError("robot runs shorter than 60 s are not meaningful")

    @property
    def idle_fraction(self) -> float:
        """Fraction of the run spent standing idle."""
        return GROUP_IDLE_FRACTION[self.group]


@dataclass(frozen=True)
class _Episode:
    """One scheduled activity episode."""

    kind: str  # "walk" | "sit" | "headbutt"
    duration: float
    sit_dwell: float = 0.0  # for "sit": time spent seated between transitions


def _schedule_episodes(
    config: RobotRunConfig, rng: np.random.Generator
) -> Tuple[List[_Episode], float]:
    """Draw the run's activity episodes and the total idle budget."""
    active = config.duration_s * (1.0 - config.idle_fraction)
    idle = config.duration_s - active

    walk_budget = active * ACTIVITY_SPLIT["walking"]
    transition_budget = active * ACTIVITY_SPLIT["transition"]
    headbutt_budget = active * ACTIVITY_SPLIT["headbutt"]

    episodes: List[_Episode] = []

    # Walking bouts of 15-40 s until the budget is spent.
    remaining = walk_budget
    while remaining > 5.0:
        bout = float(min(remaining, rng.uniform(15.0, 40.0)))
        episodes.append(_Episode("walk", bout))
        remaining -= bout

    # Posture transitions come in sit/stand pairs with a short seated
    # dwell in between; the dwell is drawn from the idle budget.
    n_pairs = max(1, int(round(transition_budget / (2.0 * TRANSITION_S))))
    for _ in range(n_pairs):
        dwell = float(rng.uniform(2.0, 5.0))
        episodes.append(
            _Episode("sit", 2.0 * TRANSITION_S + dwell, sit_dwell=dwell)
        )
        idle = max(0.0, idle - dwell)

    n_headbutts = max(1, int(round(headbutt_budget / HEADBUTT_S)))
    for _ in range(n_headbutts):
        episodes.append(_Episode("headbutt", HEADBUTT_S))

    order = rng.permutation(len(episodes))
    return [episodes[i] for i in order], idle


def _idle_gaps(
    rng: np.random.Generator, total_idle: float, n_gaps: int
) -> np.ndarray:
    """Split the idle budget into ``n_gaps`` random positive parts."""
    weights = rng.dirichlet(np.full(n_gaps, 2.0))
    return weights * total_idle


def generate_robot_run(config: RobotRunConfig) -> Trace:
    """Synthesize one robot run as a 3-axis accelerometer trace.

    Returns:
        A :class:`~repro.traces.base.Trace` with channels ``ACC_X``,
        ``ACC_Y``, ``ACC_Z`` and ground-truth events labelled
        ``walking`` (with ``step_times`` metadata), ``transition`` and
        ``headbutt``.
    """
    rng = np.random.default_rng(config.seed)
    rate = ACCEL_RATE_HZ
    n_total = sample_count(config.duration_s, rate)

    x = white_noise(rng, n_total, _IDLE_NOISE)
    y = white_noise(rng, n_total, _IDLE_NOISE)
    z = white_noise(rng, n_total, _IDLE_NOISE)

    episodes, idle_budget = _schedule_episodes(config, rng)
    gaps = _idle_gaps(rng, idle_budget, len(episodes) + 1)

    events: List[GroundTruthEvent] = []
    orientation = STANDING_ORIENTATION
    segments: List[Tuple[int, int, Tuple[float, float]]] = []  # orientation spans
    cursor = float(gaps[0])
    seg_start = 0

    def note_orientation(upto_s: float) -> None:
        nonlocal seg_start
        i1 = min(n_total, sample_count(upto_s, rate))
        if i1 > seg_start:
            segments.append((seg_start, i1, orientation))
            seg_start = i1

    for episode, gap_after in zip(episodes, gaps[1:]):
        start = cursor
        end = min(start + episode.duration, config.duration_s)
        if end <= start:
            break
        i0 = sample_count(start, rate)
        i1 = min(n_total, sample_count(end, rate))
        if episode.kind == "walk":
            bout, steps = walking_axis(
                rng,
                end - start,
                rate,
                step_rate_hz=STEP_RATE_HZ,
                peak_amplitude=STEP_PEAK,
                noise_sigma=0.18,
            )
            add_segment(x, i0, bout)
            # Gait also rocks the vertical axis a little.
            t_local = np.arange(i1 - i0) / rate
            add_segment(z, i0, 0.45 * np.sin(2 * np.pi * STEP_RATE_HZ * t_local))
            events.append(
                GroundTruthEvent.make(
                    "walking",
                    start,
                    end,
                    step_times=tuple(float(start + s) for s in steps),
                )
            )
        elif episode.kind == "sit":
            # Close the running standing-baseline span at the episode
            # start; the two ramps write absolute gravity values, so no
            # baseline is applied across them.
            note_orientation(start)
            n_tr = sample_count(TRANSITION_S, rate)
            # stand -> sit ramp
            sit_i1 = min(n_total, i0 + n_tr)
            y[i0:sit_i1] += white_noise(rng, sit_i1 - i0, _TRANSITION_JITTER)
            z[i0:sit_i1] += white_noise(rng, sit_i1 - i0, _TRANSITION_JITTER)
            _write_ramp(y, z, i0, sit_i1, STANDING_ORIENTATION, SITTING_ORIENTATION)
            events.append(
                GroundTruthEvent.make(
                    "transition",
                    start,
                    min(start + TRANSITION_S, config.duration_s),
                    direction="sit",
                )
            )
            # seated dwell, under the sitting baseline
            dwell_i1 = min(n_total, sit_i1 + sample_count(episode.sit_dwell, rate))
            segments.append((sit_i1, dwell_i1, SITTING_ORIENTATION))
            # sit -> stand ramp
            stand_i1 = min(n_total, dwell_i1 + n_tr)
            y[dwell_i1:stand_i1] += white_noise(rng, stand_i1 - dwell_i1, _TRANSITION_JITTER)
            z[dwell_i1:stand_i1] += white_noise(rng, stand_i1 - dwell_i1, _TRANSITION_JITTER)
            _write_ramp(y, z, dwell_i1, stand_i1, SITTING_ORIENTATION, STANDING_ORIENTATION)
            stand_start = start + TRANSITION_S + episode.sit_dwell
            if stand_start < config.duration_s:
                events.append(
                    GroundTruthEvent.make(
                        "transition",
                        stand_start,
                        min(stand_start + TRANSITION_S, config.duration_s),
                        direction="stand",
                    )
                )
            seg_start = stand_i1
        else:  # headbutt
            depth = HEADBUTT_DEPTH_MEAN + rng.uniform(
                -HEADBUTT_DEPTH_JITTER, HEADBUTT_DEPTH_JITTER
            )
            pulse = spike(rng, end - start, rate, depth)
            add_segment(y, i0, pulse)
            add_segment(x, i0, 0.3 * np.abs(pulse) / abs(depth))
            events.append(GroundTruthEvent.make("headbutt", start, end))
        cursor = end + float(gap_after)

    note_orientation(config.duration_s)

    # Apply the gravity baseline for each orientation span; transition
    # ramps already wrote absolute values and are excluded from spans.
    for i0, i1, (oy, oz) in segments:
        y[i0:i1] += oy
        z[i0:i1] += oz

    return Trace(
        name=f"robot/group{config.group}/seed{config.seed}",
        data={"ACC_X": x, "ACC_Y": y, "ACC_Z": z},
        rate_hz={"ACC_X": rate, "ACC_Y": rate, "ACC_Z": rate},
        duration=config.duration_s,
        events=events,
        metadata={
            "kind": "robot",
            "group": config.group,
            "idle_fraction": config.idle_fraction,
            "seed": config.seed,
        },
    )


def _write_ramp(
    y: np.ndarray,
    z: np.ndarray,
    i0: int,
    i1: int,
    from_orientation: Tuple[float, float],
    to_orientation: Tuple[float, float],
) -> None:
    """Add the gravity ramp between two postures onto y and z."""
    n = i1 - i0
    if n <= 0:
        return
    y[i0:i1] += orientation_ramp(from_orientation[0], to_orientation[0], n)
    z[i0:i1] += orientation_ramp(from_orientation[1], to_orientation[1], n)
