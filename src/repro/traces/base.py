"""Trace containers: sensor data plus ground-truth event log."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import TraceError
from repro.sensors.channels import channel_by_name


@dataclass(frozen=True)
class GroundTruthEvent:
    """One labelled event interval in a trace.

    Attributes:
        label: Event class (``"walking"``, ``"transition"``,
            ``"headbutt"``, ``"siren"``, ``"music"``, ``"speech"``, ...).
        start: Event start time in seconds.
        end: Event end time in seconds.
        metadata: Extra per-event facts — e.g. a walking bout carries
            ``step_times``; a speech segment carries ``phrase`` when it
            contains the phrase of interest.
    """

    label: str
    start: float
    end: float
    metadata: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise TraceError(
                f"event {self.label!r} ends ({self.end}) before it starts "
                f"({self.start})"
            )

    @property
    def duration(self) -> float:
        """Event length in seconds."""
        return self.end - self.start

    @property
    def midpoint(self) -> float:
        """Temporal midpoint of the event."""
        return 0.5 * (self.start + self.end)

    def meta(self, key: str, default: object = None) -> object:
        """Look up a metadata value."""
        return dict(self.metadata).get(key, default)

    @staticmethod
    def make(
        label: str, start: float, end: float, **metadata: object
    ) -> "GroundTruthEvent":
        """Build an event from keyword metadata."""
        items = tuple(sorted(metadata.items()))
        return GroundTruthEvent(label, start, end, items)


def shift_times_metadata(
    metadata: Tuple[Tuple[str, object], ...], offset: float
) -> Tuple[Tuple[str, object], ...]:
    """Shift time-valued event metadata by ``offset`` seconds.

    By convention, metadata keys ending in ``_times`` hold tuples of
    absolute trace times (e.g. a walking bout's ``step_times``); they
    must move whenever the event's own times are re-based — splicing
    traces together (:func:`repro.traces.compose.concat_traces`) or
    cutting one down (:meth:`Trace.slice`).  Everything else passes
    through verbatim.
    """
    shifted = []
    for key, value in metadata:
        if key.endswith("_times") and isinstance(value, tuple):
            value = tuple(float(t) + offset for t in value)
        shifted.append((key, value))
    return tuple(shifted)


@dataclass
class Trace:
    """A multi-channel sensor recording with ground truth.

    Attributes:
        name: Identifier (e.g. ``"robot/group1/run03"``).
        data: Sample arrays keyed by channel name.  All channels of the
            same sensor share a sampling rate and are sample-aligned.
        rate_hz: Sampling rate per channel name.
        duration: Trace length in seconds.
        events: Ground-truth event log, time-ordered.
        metadata: Trace-level facts (generator seed, activity mix, ...).
    """

    name: str
    data: Dict[str, np.ndarray]
    rate_hz: Dict[str, float]
    duration: float
    events: List[GroundTruthEvent] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.data:
            raise TraceError("trace has no channels")
        for name, samples in self.data.items():
            channel_by_name(name)  # raises UnknownChannelError
            rate = self.rate_hz.get(name)
            if not rate or rate <= 0:
                raise TraceError(f"channel {name!r} has no sampling rate")
            expected = int(round(self.duration * rate))
            if abs(len(samples) - expected) > 1:
                raise TraceError(
                    f"channel {name!r}: {len(samples)} samples inconsistent "
                    f"with duration {self.duration}s at {rate} Hz "
                    f"(expected ~{expected})"
                )
        self.events = sorted(self.events, key=lambda e: (e.start, e.end))
        for event in self.events:
            if event.start < -1e-9 or event.end > self.duration + 1e-9:
                raise TraceError(
                    f"event {event.label!r} [{event.start}, {event.end}] lies "
                    f"outside the trace [0, {self.duration}]"
                )

    @property
    def channels(self) -> Tuple[str, ...]:
        """Channel names, sorted."""
        return tuple(sorted(self.data))

    def times(self, channel: str) -> np.ndarray:
        """Per-sample timestamps of one channel."""
        rate = self.rate_hz[channel]
        return np.arange(len(self.data[channel])) / rate

    def channel_arrays(self) -> Dict[str, Tuple[np.ndarray, np.ndarray, float]]:
        """Per-channel ``(times, values, rate)`` triples (simulator input)."""
        return {
            name: (self.times(name), self.data[name], self.rate_hz[name])
            for name in self.data
        }

    def events_with_label(self, label: str) -> List[GroundTruthEvent]:
        """All events of one class, time-ordered."""
        return [e for e in self.events if e.label == label]

    def event_seconds(self, label: Optional[str] = None) -> float:
        """Total time covered by events (optionally of one class)."""
        selected = self.events if label is None else self.events_with_label(label)
        return sum(e.duration for e in selected)

    def slice(self, start: float, end: float, name: Optional[str] = None) -> "Trace":
        """Extract a sub-trace covering ``[start, end]``.

        Events are clipped to the window; event times, time-valued
        event metadata (``*_times``) and sample times are re-based so
        the sub-trace starts at 0.
        """
        start = max(0.0, start)
        end = min(self.duration, end)
        if end <= start:
            raise TraceError(f"empty slice [{start}, {end}]")
        data: Dict[str, np.ndarray] = {}
        for channel, samples in self.data.items():
            rate = self.rate_hz[channel]
            i0, i1 = int(round(start * rate)), int(round(end * rate))
            data[channel] = samples[i0:i1]
        events = [
            GroundTruthEvent(
                e.label,
                max(e.start, start) - start,
                min(e.end, end) - start,
                shift_times_metadata(e.metadata, -start),
            )
            for e in self.events
            if e.end > start and e.start < end
        ]
        return Trace(
            name=name or f"{self.name}[{start:g}:{end:g}]",
            data=data,
            rate_hz=dict(self.rate_hz),
            duration=end - start,
            events=events,
            metadata=dict(self.metadata),
        )
