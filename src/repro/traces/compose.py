"""Trace composition: build day-scale scenarios from segments.

The paper's motivation is *all-day* continuous sensing (pedometers,
fall detectors, journals), but each recorded trace covers one context.
:func:`concat_traces` splices compatible traces end to end — channels,
events and metadata included — so experiments can run over a morning
commute followed by office hours followed by retail errands, and report
day-scale battery numbers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.errors import TraceError
from repro.traces.base import GroundTruthEvent, Trace, shift_times_metadata


def concat_traces(traces: Sequence[Trace], name: str | None = None) -> Trace:
    """Splice traces end to end.

    All traces must expose the same channels at the same rates.  Event
    times — including time-valued metadata such as ``step_times`` — are
    shifted by the preceding segments' total duration; each segment's
    boundaries are recorded in the result's metadata under
    ``"segments"`` as ``(name, start, end)`` triples.

    Raises:
        TraceError: on an empty sequence or mismatched channels/rates.
    """
    if not traces:
        raise TraceError("nothing to concatenate")
    first = traces[0]
    for trace in traces[1:]:
        if set(trace.data) != set(first.data):
            raise TraceError(
                f"channel mismatch: {sorted(first.data)} vs {sorted(trace.data)}"
            )
        for channel in first.data:
            if trace.rate_hz[channel] != first.rate_hz[channel]:
                raise TraceError(
                    f"rate mismatch on {channel}: "
                    f"{first.rate_hz[channel]} vs {trace.rate_hz[channel]}"
                )

    data: Dict[str, np.ndarray] = {
        channel: np.concatenate([t.data[channel] for t in traces])
        for channel in first.data
    }
    events: List[GroundTruthEvent] = []
    segments = []
    offset = 0.0
    for trace in traces:
        for event in trace.events:
            events.append(
                GroundTruthEvent(
                    event.label,
                    event.start + offset,
                    event.end + offset,
                    shift_times_metadata(event.metadata, offset),
                )
            )
        segments.append((trace.name, offset, offset + trace.duration))
        offset += trace.duration
    return Trace(
        name=name or "+".join(t.name for t in traces),
        data=data,
        rate_hz=dict(first.rate_hz),
        duration=offset,
        events=events,
        metadata={"kind": "composite", "segments": segments},
    )


def repeat_trace(trace: Trace, times: int, name: str | None = None) -> Trace:
    """Tile a trace ``times`` times (e.g. extend a scenario to hours).

    Raises:
        TraceError: for a non-positive repeat count.
    """
    if times < 1:
        raise TraceError(f"repeat count must be >= 1, got {times}")
    return concat_traces([trace] * times, name=name or f"{trace.name}x{times}")
