"""Synthetic sensor trace substrate (paper Section 4.1).

The paper's evaluation replays accelerometer and audio traces collected
from an AIBO robot, three human subjects and three acoustic
environments.  Those recordings are not available, so this package
synthesizes traces with the same statistical structure and — crucially —
exact ground-truth event logs, which the robot setup existed to provide
in the first place ("the robot logged the start and end of each action,
which we use as the ground truth").

* :mod:`repro.traces.base` — :class:`Trace` and
  :class:`GroundTruthEvent` containers;
* :mod:`repro.traces.signals` — seeded low-level signal primitives;
* :mod:`repro.traces.robot` — scripted AIBO runs (walk / sit-stand /
  headbutt at three activity levels);
* :mod:`repro.traces.human` — commute / retail / office accelerometer
  days with confounder motion;
* :mod:`repro.traces.audio` — office / coffee-shop / outdoor scenes
  with injected sirens, music and speech;
* :mod:`repro.traces.stream` — append-only :class:`StreamBuffer`
  (a trace assembled incrementally from pushed device chunks);
* :mod:`repro.traces.io` — save/load;
* :mod:`repro.traces.library` — the standard corpora the benchmarks use
  (18 robot runs, 3 human traces, 3 audio traces).
"""

from repro.traces.base import GroundTruthEvent, Trace
from repro.traces.compose import concat_traces, repeat_trace
from repro.traces.perturb import dropout, noise_burst, random_fault_spans, stuck_sensor
from repro.traces.library import audio_corpus, human_corpus, robot_corpus
from repro.traces.robot import RobotRunConfig, generate_robot_run
from repro.traces.stream import StreamBuffer
from repro.traces.human import HumanScenario, generate_human_trace
from repro.traces.audio import AudioEnvironment, generate_audio_trace

__all__ = [
    "AudioEnvironment",
    "concat_traces",
    "dropout",
    "noise_burst",
    "random_fault_spans",
    "repeat_trace",
    "stuck_sensor",
    "GroundTruthEvent",
    "HumanScenario",
    "RobotRunConfig",
    "StreamBuffer",
    "Trace",
    "audio_corpus",
    "generate_audio_trace",
    "generate_human_trace",
    "generate_robot_run",
    "human_corpus",
    "robot_corpus",
]
