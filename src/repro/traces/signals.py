"""Low-level seeded signal primitives used by the trace generators.

Everything here is a pure function of a ``numpy.random.Generator`` plus
shape parameters, so traces are fully reproducible from a seed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Standard gravity, m/s^2.
GRAVITY = 9.81


def sample_count(duration: float, rate_hz: float) -> int:
    """Number of samples covering ``duration`` at ``rate_hz``."""
    return int(round(duration * rate_hz))


def add_segment(dest: np.ndarray, i0: int, segment: np.ndarray) -> None:
    """Add ``segment`` onto ``dest`` starting at index ``i0``.

    Clips at the destination's end and tolerates one-sample rounding
    mismatches between independently computed index ranges.
    """
    m = min(len(dest) - i0, len(segment))
    if m > 0:
        dest[i0 : i0 + m] += segment[:m]


def white_noise(rng: np.random.Generator, n: int, sigma: float) -> np.ndarray:
    """Gaussian white noise."""
    return rng.normal(0.0, sigma, n)


def smoothstep(n: int) -> np.ndarray:
    """Cubic smoothstep ramp from 0 to 1 over ``n`` samples."""
    t = np.linspace(0.0, 1.0, n)
    return t * t * (3.0 - 2.0 * t)


def low_pass_noise(
    rng: np.random.Generator, n: int, sigma: float, smooth: int
) -> np.ndarray:
    """White noise smoothed with a moving average (1/f-ish wander)."""
    raw = rng.normal(0.0, sigma, n + smooth)
    kernel = np.ones(smooth) / smooth
    return np.convolve(raw, kernel, mode="valid")[:n]


def walking_axis(
    rng: np.random.Generator,
    duration: float,
    rate_hz: float,
    step_rate_hz: float,
    peak_amplitude: float,
    noise_sigma: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Walking oscillation for one axis plus the per-step peak times.

    Models the paper's step signature: a quasi-periodic oscillation
    whose positive peaks (one per step) fall in a detectable amplitude
    band.  Stride-to-stride variability jitters both period and peak
    height.

    Returns:
        (samples, step_times): the axis signal and the ground-truth time
        of each step's peak, relative to the start of the bout.
    """
    n = sample_count(duration, rate_hz)
    t = np.arange(n) / rate_hz
    samples = white_noise(rng, n, noise_sigma)
    step_times = []
    cursor = 0.5 / step_rate_hz  # first step after half a period
    while cursor < duration - 0.2:
        period = (1.0 / step_rate_hz) * rng.uniform(0.9, 1.1)
        amplitude = peak_amplitude * rng.uniform(0.88, 1.12)
        # One step: a raised-cosine pulse centred on the step time.
        half = 0.5 * period
        lo = max(0.0, cursor - half)
        hi = min(duration, cursor + half)
        i0, i1 = int(lo * rate_hz), int(hi * rate_hz)
        if i1 > i0:
            phase = (t[i0:i1] - cursor) / half  # -1..1 across the pulse
            pulse = amplitude * 0.5 * (1.0 + np.cos(np.pi * np.clip(phase, -1, 1)))
            samples[i0:i1] += pulse
            step_times.append(cursor)
        cursor += period
    return samples, np.asarray(step_times)


def spike(
    rng: np.random.Generator,
    duration: float,
    rate_hz: float,
    depth: float,
) -> np.ndarray:
    """A single smooth spike (raised cosine) reaching ``depth``.

    ``depth`` may be negative (the headbutt's forward jerk dips the
    y-axis acceleration to around -5 m/s^2).
    """
    n = sample_count(duration, rate_hz)
    t = np.linspace(0.0, 1.0, n)
    return depth * 0.5 * (1.0 - np.cos(2.0 * np.pi * t))


def orientation_ramp(start_value: float, end_value: float, n: int) -> np.ndarray:
    """Smooth ramp between two gravity components over ``n`` samples."""
    return start_value + (end_value - start_value) * smoothstep(n)


# -- audio primitives ----------------------------------------------------


def siren_sweep(
    rng: np.random.Generator,
    duration: float,
    rate_hz: float,
    low_hz: float = 900.0,
    high_hz: float = 1700.0,
    sweep_period_s: float = 3.0,
    amplitude: float = 0.5,
) -> np.ndarray:
    """Emergency-vehicle style siren: a sinusoid sweeping a pitch band.

    The instantaneous frequency triangles between ``low_hz`` and
    ``high_hz`` — a strongly pitched sound inside the paper's
    850-1800 Hz siren band, sustained well past 650 ms.
    """
    n = sample_count(duration, rate_hz)
    t = np.arange(n) / rate_hz
    tri = 2.0 * np.abs((t / sweep_period_s) % 1.0 - 0.5)  # 1..0..1 triangle
    freq = low_hz + (high_hz - low_hz) * (1.0 - tri)
    phase = 2.0 * np.pi * np.cumsum(freq) / rate_hz
    start_phase = rng.uniform(0, 2 * np.pi)
    return amplitude * np.sin(phase + start_phase)


def music_segment(
    rng: np.random.Generator,
    duration: float,
    rate_hz: float,
    amplitude: float = 0.35,
) -> np.ndarray:
    """Tonal music-like audio: a slowly-changing chord with a beat.

    Sustained harmonic tones give music a *stable* zero-crossing rate
    from window to window, while the beat envelope produces substantial
    amplitude variance — the exact feature combination the
    music-journal wake-up condition keys on.
    """
    n = sample_count(duration, rate_hz)
    t = np.arange(n) / rate_hz
    # Pentatonic-ish pitch set; pick a chord and hold it per bar.
    pitches = np.array([220.0, 261.6, 329.6, 392.0, 440.0, 523.3])
    bar_s = rng.uniform(1.6, 2.4)
    samples = np.zeros(n)
    bar_start = 0.0
    while bar_start < duration:
        bar_end = min(duration, bar_start + bar_s)
        i0, i1 = int(bar_start * rate_hz), int(bar_end * rate_hz)
        chord = rng.choice(pitches, size=3, replace=False)
        for f in chord:
            phase = rng.uniform(0, 2 * np.pi)
            samples[i0:i1] += np.sin(2 * np.pi * f * t[i0:i1] + phase) / 3.0
        bar_start = bar_end
    beat_hz = rng.uniform(1.5, 2.5)
    envelope = 0.65 + 0.35 * np.clip(np.sin(2 * np.pi * beat_hz * t), 0.0, 1.0)
    return amplitude * samples * envelope


def speech_segment(
    rng: np.random.Generator,
    duration: float,
    rate_hz: float,
    amplitude: float = 0.4,
) -> np.ndarray:
    """Speech-like audio: syllabic bursts of band-limited noise.

    Alternating voiced-ish (low-frequency-heavy) and fricative-ish
    (high-frequency-heavy) bursts at a ~4 Hz syllabic rate make the
    zero-crossing rate swing strongly between sub-windows — the high
    ZCR-variance signature the phrase-detection condition keys on.
    """
    n = sample_count(duration, rate_hz)
    samples = np.zeros(n)
    cursor = 0.0
    while cursor < duration:
        syllable_s = rng.uniform(0.12, 0.35)
        gap_s = rng.uniform(0.03, 0.25)
        i0 = int(cursor * rate_hz)
        i1 = min(n, int((cursor + syllable_s) * rate_hz))
        if i1 <= i0:
            break
        burst = rng.normal(0.0, 1.0, i1 - i0)
        if rng.random() < 0.5:
            # Voiced: smooth the noise (low ZCR) and add a pitch buzz.
            # numpy's convolve(mode="same") returns the *kernel's*
            # length when it exceeds the signal's, so cap the kernel for
            # very short bursts at a trace's tail.
            width = min(24, len(burst))
            kernel = np.ones(width) / width
            burst = np.convolve(burst, kernel, mode="same") * 4.0
            tt = np.arange(i1 - i0) / rate_hz
            burst += 0.6 * np.sin(2 * np.pi * rng.uniform(110, 220) * tt)
        # else fricative: keep it white (high ZCR).
        ramp = min(len(burst) // 4, 40)
        if ramp > 0:
            burst[:ramp] *= smoothstep(ramp)
            burst[-ramp:] *= smoothstep(ramp)[::-1]
        samples[i0:i1] += burst * rng.uniform(0.5, 1.0)
        cursor += syllable_s + gap_s
    peak = np.max(np.abs(samples)) or 1.0
    return amplitude * samples / peak


def babble_noise(
    rng: np.random.Generator, n: int, rate_hz: float, sigma: float
) -> np.ndarray:
    """Coffee-shop babble: amplitude-modulated smoothed noise."""
    base = low_pass_noise(rng, n, sigma, smooth=6)
    t = np.arange(n) / rate_hz
    mod = 1.0 + 0.5 * np.sin(2 * np.pi * 0.3 * t + rng.uniform(0, 2 * np.pi))
    mod += 0.3 * np.sin(2 * np.pi * 1.1 * t + rng.uniform(0, 2 * np.pi))
    return base * np.clip(mod, 0.2, None)


def wind_noise(
    rng: np.random.Generator, n: int, rate_hz: float, sigma: float
) -> np.ndarray:
    """Outdoor wind: strongly low-passed noise with slow gusts."""
    base = low_pass_noise(rng, n, sigma, smooth=40)
    gust = 1.0 + 0.8 * np.clip(low_pass_noise(rng, n, 1.0, smooth=4000), 0, None)
    return base * gust
