"""Audio traces (paper Section 4.1).

"We collected three half-hour audio traces in different environments:
an office, a coffee shop and outdoors.  We used audio mixing software to
add audio events of interest to the collected traces.  The audio events
of interest include music (5% of each trace), speech (5% of each trace),
and sirens (2% of each trace)."

The generators here synthesize the background scenes and mix in
synthetic events with the feature structure the detectors key on
(pitch-prominent sweeps for sirens, stable-ZCR tonal segments for music,
high-ZCR-variance syllabic segments for speech).  A subset of speech
segments carries the phrase of interest (``phrase=True`` metadata) so
the phrase-detection application has its own, rarer event class
(Section 5.2: the phrase occurs in "<1% of each trace" while speech is
~5%).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import TraceError
from repro.sensors.channels import AUDIO_RATE_HZ
from repro.traces.base import GroundTruthEvent, Trace
from repro.traces.signals import (
    add_segment,
    babble_noise,
    music_segment,
    sample_count,
    siren_sweep,
    speech_segment,
    white_noise,
    wind_noise,
)


class AudioEnvironment(enum.Enum):
    """The three recording environments."""

    OFFICE = "office"
    COFFEE_SHOP = "coffee_shop"
    OUTDOORS = "outdoors"


#: Target fraction of the trace covered by each event class.
EVENT_FRACTIONS = {"music": 0.05, "speech": 0.05, "siren": 0.02}

#: Fraction of speech segments containing the phrase of interest.
PHRASE_FRACTION = 0.15

#: Background noise level per environment, as the sigma handed to the
#: respective noise primitive.  Babble and wind are smoothed inside
#: their primitives, so the *effective* RMS ordering is
#: office (~0.005) < coffee shop (~0.012) < outdoors (~0.015) — quiet
#: enough that every event class stands clear of the background in the
#: detectors' feature space.
_BACKGROUND_SIGMA = {
    AudioEnvironment.OFFICE: 0.005,
    AudioEnvironment.COFFEE_SHOP: 0.03,
    AudioEnvironment.OUTDOORS: 0.10,
}


@dataclass(frozen=True)
class AudioTraceConfig:
    """Configuration for one synthetic audio trace.

    Attributes:
        environment: Background scene.
        duration_s: Trace length; the paper used 1800 s, the default
            here is 600 s (event *fractions* are preserved).
        seed: RNG seed.
    """

    environment: AudioEnvironment
    duration_s: float = 600.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration_s < 60.0:
            raise TraceError("audio traces shorter than 60 s are not meaningful")


def _background(
    rng: np.random.Generator, env: AudioEnvironment, n: int, rate: float
) -> np.ndarray:
    sigma = _BACKGROUND_SIGMA[env]
    if env is AudioEnvironment.OFFICE:
        noise = white_noise(rng, n, sigma)
        # Occasional keyboard clicks.
        n_clicks = max(1, int(n / rate / 4.0))
        for _ in range(n_clicks):
            i = rng.integers(0, max(1, n - 40))
            noise[i : i + 40] += rng.uniform(0.02, 0.06) * rng.normal(0, 1, 40)
        return noise
    if env is AudioEnvironment.COFFEE_SHOP:
        return babble_noise(rng, n, rate, sigma)
    return wind_noise(rng, n, rate, sigma)


def _draw_event_segments(
    rng: np.random.Generator,
    duration: float,
    fractions: Dict[str, float],
    length_ranges: Dict[str, Tuple[float, float]],
) -> List[Tuple[str, float, float]]:
    """Place non-overlapping event segments covering the target fractions.

    Returns ``(label, start, end)`` triples, time-ordered.
    """
    segments: List[Tuple[str, float, float]] = []
    for label, fraction in fractions.items():
        budget = duration * fraction
        lo, hi = length_ranges[label]
        # Short traces cannot fit full-length segments; shrink the range
        # so every class is still represented at its target fraction.
        lo = min(lo, max(2.0, 0.8 * budget))
        hi = min(hi, max(lo, budget))
        while budget >= lo:
            seg = float(min(budget, rng.uniform(lo, hi)))
            segments.append((label, 0.0, seg))  # start placed below
            budget -= seg
    # Random non-overlapping placement: sample starts, retry on overlap.
    placed: List[Tuple[str, float, float]] = []
    order = rng.permutation(len(segments))
    for idx in order:
        label, _, seg = segments[idx]
        for _attempt in range(200):
            start = float(rng.uniform(0.0, duration - seg))
            end = start + seg
            if all(end + 0.5 <= s or start - 0.5 >= e for _, s, e in placed):
                placed.append((label, start, end))
                break
        # Segments that cannot be placed are dropped; with 12% total
        # coverage this is rare.
    return sorted(placed, key=lambda x: x[1])


def generate_audio_trace(config: AudioTraceConfig) -> Trace:
    """Synthesize one microphone trace with mixed-in events.

    Ground truth: ``siren``, ``music`` and ``speech`` events; speech
    events carry ``phrase`` metadata marking whether the phrase of
    interest occurs in them.
    """
    rng = np.random.default_rng(config.seed)
    rate = AUDIO_RATE_HZ
    n_total = sample_count(config.duration_s, rate)

    samples = _background(rng, config.environment, n_total, rate)

    placed = _draw_event_segments(
        rng,
        config.duration_s,
        EVENT_FRACTIONS,
        length_ranges={
            "music": (12.0, 30.0),
            "speech": (5.0, 14.0),
            "siren": (3.0, 8.0),
        },
    )

    # Decide up front which speech segments carry the phrase; at least
    # one per trace does (the phrase detector needs a target), keeping
    # total phrase time well under 1 % of the trace (Section 5.2).
    speech_indices = [i for i, (label, _, _) in enumerate(placed) if label == "speech"]
    phrase_indices = {i for i in speech_indices if rng.random() < PHRASE_FRACTION}
    if speech_indices and not phrase_indices:
        phrase_indices = {int(rng.choice(speech_indices))}

    events: List[GroundTruthEvent] = []
    for index, (label, start, end) in enumerate(placed):
        i0 = sample_count(start, rate)
        i1 = min(n_total, sample_count(end, rate))
        seg_duration = (i1 - i0) / rate
        if label == "siren":
            seg = siren_sweep(rng, seg_duration, rate)
            events.append(GroundTruthEvent.make("siren", start, end))
        elif label == "music":
            seg = music_segment(rng, seg_duration, rate)
            events.append(GroundTruthEvent.make("music", start, end))
        else:
            seg = speech_segment(rng, seg_duration, rate)
            events.append(
                GroundTruthEvent.make(
                    "speech", start, end, phrase=index in phrase_indices
                )
            )
        add_segment(samples, i0, seg)

    return Trace(
        name=f"audio/{config.environment.value}/seed{config.seed}",
        data={"MIC": samples},
        rate_hz={"MIC": rate},
        duration=config.duration_s,
        events=events,
        metadata={
            "kind": "audio",
            "environment": config.environment.value,
            "seed": config.seed,
        },
    )
