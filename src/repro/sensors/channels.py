"""Sensor channel definitions.

A :class:`SensorChannel` names one scalar stream a sensor produces.  The
paper's prototype exposes the three accelerometer axes and the microphone
as independent channels; a :class:`~repro.api.branch.ProcessingBranch` is
anchored to exactly one channel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import UnknownChannelError

#: Default accelerometer sampling rate used throughout the reproduction.
#: 50 Hz is the rate Android reports for SENSOR_DELAY_GAME and is what the
#: paper's step/transition/headbutt classifiers were tuned for.
ACCEL_RATE_HZ = 50.0

#: Default microphone sampling rate.  8 kHz comfortably covers the siren
#: detector's 850-1800 Hz band of interest.
AUDIO_RATE_HZ = 8000.0


class SensorKind(enum.Enum):
    """Physical sensor family a channel belongs to."""

    ACCELEROMETER = "accelerometer"
    MICROPHONE = "microphone"


@dataclass(frozen=True)
class SensorChannel:
    """One scalar sensor stream.

    Attributes:
        name: Stable identifier used in the intermediate language
            (e.g. ``"ACC_X"``).
        kind: Physical sensor family.
        unit: Unit of the samples (informational).
        rate_hz: Nominal sampling rate of the channel.
    """

    name: str
    kind: SensorKind
    unit: str
    rate_hz: float

    def __str__(self) -> str:
        return self.name


ACC_X = SensorChannel("ACC_X", SensorKind.ACCELEROMETER, "m/s^2", ACCEL_RATE_HZ)
ACC_Y = SensorChannel("ACC_Y", SensorKind.ACCELEROMETER, "m/s^2", ACCEL_RATE_HZ)
ACC_Z = SensorChannel("ACC_Z", SensorKind.ACCELEROMETER, "m/s^2", ACCEL_RATE_HZ)
MIC = SensorChannel("MIC", SensorKind.MICROPHONE, "normalized amplitude", AUDIO_RATE_HZ)

#: The three accelerometer axes, in x/y/z order.
ACCELEROMETER_CHANNELS = (ACC_X, ACC_Y, ACC_Z)

_CHANNELS = {c.name: c for c in (ACC_X, ACC_Y, ACC_Z, MIC)}


def channel_by_name(name: str) -> SensorChannel:
    """Look up a channel by its intermediate-language name.

    Raises:
        UnknownChannelError: if no channel with that name exists.
    """
    try:
        return _CHANNELS[name]
    except KeyError:
        raise UnknownChannelError(name) from None


def all_channels() -> tuple[SensorChannel, ...]:
    """Return every channel the simulated device exposes."""
    return tuple(_CHANNELS.values())
