"""Sample containers flowing between processing algorithms.

Data moves through a wake-up condition as a sequence of :class:`Chunk`
objects.  A chunk is a batch of *items* with per-item timestamps; batching
lets the Python interpreter vectorize with numpy while preserving the
paper's per-sample semantics (an algorithm "may not always produce a
result", Section 3.5 — here that simply means it may return a shorter, or
empty, chunk).

Three item kinds exist:

* ``SCALAR`` — one float per item (raw samples, moving averages,
  extracted features).  ``values`` has shape ``(n,)``.
* ``FRAME`` — one window of time-domain samples per item (the output of a
  windowing algorithm).  ``values`` has shape ``(n, width)``.
* ``SPECTRUM`` — one one-sided complex spectrum per item (the output of an
  FFT).  ``values`` has shape ``(n, nbins)`` and is complex.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class StreamKind(enum.Enum):
    """Kind of item carried on a stream between two algorithms."""

    SCALAR = "scalar"
    FRAME = "frame"
    SPECTRUM = "spectrum"


@dataclass
class Chunk:
    """A batch of stream items with per-item timestamps.

    Attributes:
        kind: Item kind carried by this chunk.
        times: Per-item timestamps in seconds, shape ``(n,)``.  For
            ``FRAME``/``SPECTRUM`` items the timestamp is the *end* of the
            window the item was computed from, so that admission-control
            decisions are causally consistent.
        values: Item payload; shape ``(n,)`` for scalars and
            ``(n, width)`` otherwise.
        rate_hz: Sampling rate of the underlying time-domain signal.
            Needed by frequency-domain algorithms to map bins to Hz.
    """

    kind: StreamKind
    times: np.ndarray
    values: np.ndarray
    rate_hz: float

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=np.float64)
        if self.kind is StreamKind.SCALAR:
            self.values = np.asarray(self.values, dtype=np.float64)
            if self.values.ndim != 1:
                raise ValueError("SCALAR chunk values must be 1-D")
        else:
            self.values = np.asarray(self.values)
            if self.values.ndim != 2:
                raise ValueError(f"{self.kind.value} chunk values must be 2-D")
        if self.times.shape[0] != self.values.shape[0]:
            raise ValueError(
                f"times ({self.times.shape[0]}) and values "
                f"({self.values.shape[0]}) item counts differ"
            )

    def __len__(self) -> int:
        return int(self.times.shape[0])

    @property
    def is_empty(self) -> bool:
        """True when the chunk carries no items."""
        return len(self) == 0

    @classmethod
    def empty(cls, kind: StreamKind, rate_hz: float, width: int | None = None) -> "Chunk":
        """Build a chunk with zero items of the given kind."""
        if kind is StreamKind.SCALAR:
            values = np.empty(0, dtype=np.float64)
        else:
            dtype = np.complex128 if kind is StreamKind.SPECTRUM else np.float64
            values = np.empty((0, width or 0), dtype=dtype)
        return cls(kind, np.empty(0, dtype=np.float64), values, rate_hz)

    @classmethod
    def scalars(cls, times: np.ndarray, values: np.ndarray, rate_hz: float) -> "Chunk":
        """Convenience constructor for a SCALAR chunk."""
        return cls(StreamKind.SCALAR, times, values, rate_hz)

    @classmethod
    def view(
        cls,
        kind: StreamKind,
        times: np.ndarray,
        values: np.ndarray,
        rate_hz: float,
    ) -> "Chunk":
        """Zero-copy constructor for already-validated arrays.

        Skips ``__post_init__`` coercion and shape checks, so ``times``
        and ``values`` are stored as-is (typically numpy views).  The
        caller guarantees dtype/shape invariants; hot paths that slice
        validated arrays (round splitting, port synchronization) use
        this to avoid per-chunk validation and copies.
        """
        chunk = object.__new__(cls)
        chunk.kind = kind
        chunk.times = times
        chunk.values = values
        chunk.rate_hz = rate_hz
        return chunk

    def slice(self, start: int, stop: int) -> "Chunk":
        """Zero-copy sub-chunk of items ``[start, stop)`` (numpy views)."""
        return Chunk.view(
            self.kind, self.times[start:stop], self.values[start:stop], self.rate_hz
        )

    def take(self, mask: np.ndarray) -> "Chunk":
        """Return a new chunk keeping only items where ``mask`` is true."""
        return Chunk(self.kind, self.times[mask], self.values[mask], self.rate_hz)


@dataclass
class BatchedChunk:
    """A stack of per-trace chunks sharing one array program.

    Tensor-major execution runs a compiled wake-up condition once over
    *B* traces by adding a leading batch axis to every stream: ``times``
    and ``values`` gain a row per trace, padded on the right to the
    longest row.  Valid data is always a *left-justified prefix* —
    ``lengths[b]`` items — so elementwise and multi-port operations stay
    aligned without masks, and padding never has to be inspected, only
    ignored.

    Attributes:
        kind: Item kind carried by every row.
        times: Per-item timestamps, shape ``(B, n_max)``; entries at or
            past ``lengths[b]`` are padding (zeros or stale values) and
            must never be read.
        values: Item payload, shape ``(B, n_max)`` for scalars and
            ``(B, n_max, width)`` otherwise; same padding contract.
        lengths: Valid-prefix item counts per row, shape ``(B,)`` int64.
        rate_hz: Sampling rate shared by every row (batches are grouped
            by rate before stacking).
    """

    kind: StreamKind
    times: np.ndarray
    values: np.ndarray
    lengths: np.ndarray
    rate_hz: float

    @property
    def batch_size(self) -> int:
        """Number of rows (traces) in the batch."""
        return int(self.times.shape[0])

    @property
    def n_max(self) -> int:
        """Padded per-row item capacity."""
        return int(self.times.shape[1])

    def row(self, index: int) -> Chunk:
        """Zero-copy :class:`Chunk` over row ``index``'s valid prefix."""
        n = int(self.lengths[index])
        return Chunk.view(
            self.kind, self.times[index, :n], self.values[index, :n], self.rate_hz
        )

    def rows(self) -> "list[Chunk]":
        """Every row's valid prefix as per-trace chunks."""
        return [self.row(b) for b in range(self.batch_size)]

    @classmethod
    def view(
        cls,
        kind: StreamKind,
        times: np.ndarray,
        values: np.ndarray,
        lengths: np.ndarray,
        rate_hz: float,
    ) -> "BatchedChunk":
        """Zero-copy constructor for already-validated arrays."""
        batch = object.__new__(cls)
        batch.kind = kind
        batch.times = times
        batch.values = values
        batch.lengths = lengths
        batch.rate_hz = rate_hz
        return batch

    def take(self, mask: np.ndarray) -> "BatchedChunk":
        """Batched ``Chunk.take``: keep masked items, re-left-justified.

        For every row, items where ``mask`` is True within that row's
        valid prefix move to a left-justified prefix in their original
        order (a ragged boolean take); the new lengths count what was
        kept.  Padding positions are ignored regardless of their mask.
        """
        mask = np.asarray(mask, dtype=bool)
        columns = np.arange(mask.shape[1], dtype=np.int64)[None, :]
        keep = mask & (columns < self.lengths[:, None])
        lengths = keep.sum(axis=1, dtype=np.int64)
        # Scatter kept items to left-justified prefixes.  ``nonzero``
        # walks row-major, so items stay in original order and each
        # row's destinations are consecutive from its start offset.
        # O(B*n + kept) — and the result shrinks to the widest kept
        # prefix, so downstream stages stop paying for dropped columns.
        rows_idx, cols_idx = np.nonzero(keep)
        starts = np.zeros(len(lengths) + 1, dtype=np.int64)
        np.cumsum(lengths, out=starts[1:])
        dest = np.arange(rows_idx.size, dtype=np.int64) - starts[rows_idx]
        k_max = int(lengths.max()) if len(lengths) else 0
        times = np.zeros((self.batch_size, k_max), dtype=self.times.dtype)
        times[rows_idx, dest] = self.times[rows_idx, cols_idx]
        values = np.zeros(
            (self.batch_size, k_max) + self.values.shape[2:],
            dtype=self.values.dtype,
        )
        values[rows_idx, dest] = self.values[rows_idx, cols_idx]
        return BatchedChunk.view(
            self.kind, times, values, lengths, self.rate_hz
        )

    @classmethod
    def from_scalar_rows(
        cls,
        times_rows: "list[np.ndarray]",
        values_rows: "list[np.ndarray]",
        rate_hz: float,
    ) -> "BatchedChunk":
        """Stack per-row scalar arrays into one padded batch.

        The raw-array counterpart of :meth:`from_rows` for ``SCALAR``
        streams: when every row happens to be the same length (the
        common fleet case — same-duration rounds arriving together) the
        stack is a single C-level copy; ragged rows fall back to the
        padded per-row loop.  Rows are coerced to ``float64`` batchwise.
        """
        if not times_rows:
            raise ValueError("cannot batch zero rows")
        lengths = np.array([len(t) for t in times_rows], dtype=np.int64)
        n_max = int(lengths.max())
        if n_max and bool((lengths == n_max).all()):
            # One C-level concatenate per tensor; np.stack would build a
            # Python-side expanded view per row first.
            batch = len(times_rows)
            times = np.concatenate(times_rows).reshape(batch, n_max)
            values = np.concatenate(values_rows).reshape(batch, n_max)
            if times.dtype != np.float64:
                times = times.astype(np.float64)
            if values.dtype != np.float64:
                values = values.astype(np.float64)
        else:
            batch = len(times_rows)
            times = np.zeros((batch, n_max), dtype=np.float64)
            values = np.zeros((batch, n_max), dtype=np.float64)
            for b, (t, v) in enumerate(zip(times_rows, values_rows)):
                n = lengths[b]
                times[b, :n] = t
                values[b, :n] = v
        return cls.view(StreamKind.SCALAR, times, values, lengths, rate_hz)

    @classmethod
    def from_rows(cls, chunks: "list[Chunk]") -> "BatchedChunk":
        """Stack per-trace chunks into one padded batch.

        Rows may be ragged; each is copied into the left-justified
        prefix of its row and the remainder zero-filled.
        """
        if not chunks:
            raise ValueError("cannot batch zero chunks")
        kind = chunks[0].kind
        rate_hz = chunks[0].rate_hz
        lengths = np.array([len(c) for c in chunks], dtype=np.int64)
        n_max = int(lengths.max())
        batch = len(chunks)
        times = np.zeros((batch, n_max), dtype=np.float64)
        if kind is StreamKind.SCALAR:
            values = np.zeros((batch, n_max), dtype=np.float64)
        else:
            width = max((c.values.shape[1] for c in chunks), default=0)
            dtype = np.complex128 if kind is StreamKind.SPECTRUM else np.float64
            values = np.zeros((batch, n_max, width), dtype=dtype)
        for b, chunk in enumerate(chunks):
            n = len(chunk)
            times[b, :n] = chunk.times
            values[b, :n] = chunk.values
        return cls.view(kind, times, values, lengths, rate_hz)


@dataclass
class ChunkBuffer:
    """Accumulates scalar items across chunk boundaries.

    Several algorithms (windowing, moving averages) need to carry partial
    state between chunks.  ``ChunkBuffer`` holds the tail of the scalar
    stream seen so far along with matching timestamps.
    """

    times: np.ndarray = field(default_factory=lambda: np.empty(0))
    values: np.ndarray = field(default_factory=lambda: np.empty(0))

    def extend(self, chunk: Chunk) -> None:
        """Append the items of a scalar chunk to the buffer."""
        if chunk.kind is not StreamKind.SCALAR:
            raise ValueError("ChunkBuffer only accepts SCALAR chunks")
        self.times = np.concatenate([self.times, chunk.times])
        self.values = np.concatenate([self.values, chunk.values])

    def consume(self, count: int) -> None:
        """Drop the first ``count`` items."""
        self.times = self.times[count:]
        self.values = self.values[count:]

    def __len__(self) -> int:
        return int(self.times.shape[0])

    def clear(self) -> None:
        """Drop everything in the buffer."""
        self.times = np.empty(0)
        self.values = np.empty(0)
