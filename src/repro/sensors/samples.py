"""Sample containers flowing between processing algorithms.

Data moves through a wake-up condition as a sequence of :class:`Chunk`
objects.  A chunk is a batch of *items* with per-item timestamps; batching
lets the Python interpreter vectorize with numpy while preserving the
paper's per-sample semantics (an algorithm "may not always produce a
result", Section 3.5 — here that simply means it may return a shorter, or
empty, chunk).

Three item kinds exist:

* ``SCALAR`` — one float per item (raw samples, moving averages,
  extracted features).  ``values`` has shape ``(n,)``.
* ``FRAME`` — one window of time-domain samples per item (the output of a
  windowing algorithm).  ``values`` has shape ``(n, width)``.
* ``SPECTRUM`` — one one-sided complex spectrum per item (the output of an
  FFT).  ``values`` has shape ``(n, nbins)`` and is complex.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class StreamKind(enum.Enum):
    """Kind of item carried on a stream between two algorithms."""

    SCALAR = "scalar"
    FRAME = "frame"
    SPECTRUM = "spectrum"


@dataclass
class Chunk:
    """A batch of stream items with per-item timestamps.

    Attributes:
        kind: Item kind carried by this chunk.
        times: Per-item timestamps in seconds, shape ``(n,)``.  For
            ``FRAME``/``SPECTRUM`` items the timestamp is the *end* of the
            window the item was computed from, so that admission-control
            decisions are causally consistent.
        values: Item payload; shape ``(n,)`` for scalars and
            ``(n, width)`` otherwise.
        rate_hz: Sampling rate of the underlying time-domain signal.
            Needed by frequency-domain algorithms to map bins to Hz.
    """

    kind: StreamKind
    times: np.ndarray
    values: np.ndarray
    rate_hz: float

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=np.float64)
        if self.kind is StreamKind.SCALAR:
            self.values = np.asarray(self.values, dtype=np.float64)
            if self.values.ndim != 1:
                raise ValueError("SCALAR chunk values must be 1-D")
        else:
            self.values = np.asarray(self.values)
            if self.values.ndim != 2:
                raise ValueError(f"{self.kind.value} chunk values must be 2-D")
        if self.times.shape[0] != self.values.shape[0]:
            raise ValueError(
                f"times ({self.times.shape[0]}) and values "
                f"({self.values.shape[0]}) item counts differ"
            )

    def __len__(self) -> int:
        return int(self.times.shape[0])

    @property
    def is_empty(self) -> bool:
        """True when the chunk carries no items."""
        return len(self) == 0

    @classmethod
    def empty(cls, kind: StreamKind, rate_hz: float, width: int | None = None) -> "Chunk":
        """Build a chunk with zero items of the given kind."""
        if kind is StreamKind.SCALAR:
            values = np.empty(0, dtype=np.float64)
        else:
            dtype = np.complex128 if kind is StreamKind.SPECTRUM else np.float64
            values = np.empty((0, width or 0), dtype=dtype)
        return cls(kind, np.empty(0, dtype=np.float64), values, rate_hz)

    @classmethod
    def scalars(cls, times: np.ndarray, values: np.ndarray, rate_hz: float) -> "Chunk":
        """Convenience constructor for a SCALAR chunk."""
        return cls(StreamKind.SCALAR, times, values, rate_hz)

    @classmethod
    def view(
        cls,
        kind: StreamKind,
        times: np.ndarray,
        values: np.ndarray,
        rate_hz: float,
    ) -> "Chunk":
        """Zero-copy constructor for already-validated arrays.

        Skips ``__post_init__`` coercion and shape checks, so ``times``
        and ``values`` are stored as-is (typically numpy views).  The
        caller guarantees dtype/shape invariants; hot paths that slice
        validated arrays (round splitting, port synchronization) use
        this to avoid per-chunk validation and copies.
        """
        chunk = object.__new__(cls)
        chunk.kind = kind
        chunk.times = times
        chunk.values = values
        chunk.rate_hz = rate_hz
        return chunk

    def slice(self, start: int, stop: int) -> "Chunk":
        """Zero-copy sub-chunk of items ``[start, stop)`` (numpy views)."""
        return Chunk.view(
            self.kind, self.times[start:stop], self.values[start:stop], self.rate_hz
        )

    def take(self, mask: np.ndarray) -> "Chunk":
        """Return a new chunk keeping only items where ``mask`` is true."""
        return Chunk(self.kind, self.times[mask], self.values[mask], self.rate_hz)


@dataclass
class ChunkBuffer:
    """Accumulates scalar items across chunk boundaries.

    Several algorithms (windowing, moving averages) need to carry partial
    state between chunks.  ``ChunkBuffer`` holds the tail of the scalar
    stream seen so far along with matching timestamps.
    """

    times: np.ndarray = field(default_factory=lambda: np.empty(0))
    values: np.ndarray = field(default_factory=lambda: np.empty(0))

    def extend(self, chunk: Chunk) -> None:
        """Append the items of a scalar chunk to the buffer."""
        if chunk.kind is not StreamKind.SCALAR:
            raise ValueError("ChunkBuffer only accepts SCALAR chunks")
        self.times = np.concatenate([self.times, chunk.times])
        self.values = np.concatenate([self.values, chunk.values])

    def consume(self, count: int) -> None:
        """Drop the first ``count`` items."""
        self.times = self.times[count:]
        self.values = self.values[count:]

    def __len__(self) -> int:
        return int(self.times.shape[0])

    def clear(self) -> None:
        """Drop everything in the buffer."""
        self.times = np.empty(0)
        self.values = np.empty(0)
