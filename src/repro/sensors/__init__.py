"""Sensor channel definitions and sample containers.

The sensor substrate models the physical sensors the paper's prototype
used: a 3-axis accelerometer and a microphone, exposed to the rest of the
system as named *channels* (``ACC_X``, ``ACC_Y``, ``ACC_Z``, ``MIC``).
"""

from repro.sensors.channels import (
    ACC_X,
    ACC_Y,
    ACC_Z,
    ACCELEROMETER_CHANNELS,
    MIC,
    SensorChannel,
    SensorKind,
    channel_by_name,
)
from repro.sensors.samples import Chunk, StreamKind

__all__ = [
    "ACC_X",
    "ACC_Y",
    "ACC_Z",
    "ACCELEROMETER_CHANNELS",
    "MIC",
    "Chunk",
    "SensorChannel",
    "SensorKind",
    "StreamKind",
    "channel_by_name",
]
