"""Reproduction of Sidewinder (Liaqat et al., ASPLOS 2016).

Sidewinder is a heterogeneous architecture for continuous mobile
sensing: the platform ships common sensor-processing algorithms that run
on a low-power sensor hub, and applications chain and parameterize them
into custom *wake-up conditions* that wake the main processor only when
events of interest occur.

Package map:

* :mod:`repro.api` — developer-facing API (pipelines, branches,
  algorithm stubs, listeners, the sensor manager);
* :mod:`repro.il` — the intermediate language decoupling platform from
  hub hardware;
* :mod:`repro.hub` — the hub runtime, MCU models, feasibility analysis;
* :mod:`repro.algorithms` — the platform's processing algorithms;
* :mod:`repro.sensors` — channels and sample containers;
* :mod:`repro.power` — the Nexus 4 / MCU power models;
* :mod:`repro.traces` — synthetic robot / human / audio trace substrate;
* :mod:`repro.apps` — the paper's six applications;
* :mod:`repro.sim` — the trace-driven simulator and its sensing
  configurations (Always Awake, Duty Cycling, Batching, Predefined
  Activity, Sidewinder, Oracle);
* :mod:`repro.eval` — metrics and the table/figure builders.

Quickstart::

    from repro.api import (MinThreshold, MovingAverage, ProcessingBranch,
                           ProcessingPipeline, SidewinderSensorManager,
                           VectorMagnitude)
    from repro.api.listener import RecordingListener

    manager = SidewinderSensorManager()
    pipeline = ProcessingPipeline()
    for axis in (manager.ACCELEROMETER_X, manager.ACCELEROMETER_Y,
                 manager.ACCELEROMETER_Z):
        pipeline.add(ProcessingBranch(axis).add(MovingAverage(10)))
    pipeline.add(VectorMagnitude())
    pipeline.add(MinThreshold(15))
    listener = RecordingListener()
    handle = manager.push(pipeline, listener)
    print(handle.intermediate_code)
"""

__version__ = "1.0.0"

from repro.errors import SidewinderError

__all__ = ["SidewinderError", "__version__"]
