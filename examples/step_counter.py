"""Step counting on a robot trace: Sidewinder versus the alternatives.

Replays one synthetic AIBO run (group 2: 50% idle) through the step
application under four sensing configurations and prints the paper's
core trade-off: Sidewinder keeps perfect recall at a fraction of the
energy.

Run:  python examples/step_counter.py
"""

from repro.apps import StepsApp
from repro.sim import AlwaysAwake, DutyCycling, Oracle, Sidewinder
from repro.traces.robot import RobotRunConfig, generate_robot_run


def main():
    trace = generate_robot_run(RobotRunConfig(group=2, duration_s=600.0, seed=7))
    true_steps = sum(
        len(event.meta("step_times"))
        for event in trace.events_with_label("walking")
    )
    print(f"trace: {trace.name} ({trace.duration:.0f}s, {true_steps} true steps)")
    print()
    print(f"{'configuration':<18s} {'power':>9s} {'recall':>7s} "
          f"{'steps':>6s} {'wakeups':>8s}")

    for config in (AlwaysAwake(), DutyCycling(10.0), Sidewinder(), Oracle()):
        app = StepsApp()
        result = config.run(app, trace)
        counted = StepsApp.count_steps(result.detections)
        print(
            f"{result.config_name:<18s} {result.average_power_mw:7.1f}mW "
            f"{result.recall:6.0%} {counted:6d} {result.wakeup_count:8d}"
        )

    print()
    aa = AlwaysAwake().run(StepsApp(), trace).average_power_mw
    oracle = Oracle().run(StepsApp(), trace).average_power_mw
    sw = Sidewinder().run(StepsApp(), trace).average_power_mw
    fraction = (aa - sw) / (aa - oracle)
    print(f"Sidewinder achieves {fraction:.0%} of the possible savings "
          f"(paper: 92.7-95.7% across the robot corpus).")


if __name__ == "__main__":
    main()
