"""Authoring a brand-new wake-up condition with the platform algorithms.

The point of Sidewinder is that a developer can build conditions the
manufacturer never anticipated, without writing MCU code.  This example
invents a "device picked up off the table" detector:

* while flat on a table, gravity sits on z (~9.81) and the device is
  still;
* a pickup tilts the device (z gravity component falls) *while* motion
  energy rises.

The condition uses two branches off different axes joined through band
indicators and a ``minOf`` conjunction — entirely from the platform's
predefined algorithms — and runs on the MSP430.

Run:  python examples/custom_wakeup.py
"""

import numpy as np

from repro.api import (
    BandIndicator,
    MinOf,
    MinThreshold,
    MovingAverage,
    ProcessingBranch,
    ProcessingPipeline,
    SidewinderSensorManager,
    Statistic,
    Window,
)
from repro.api.listener import RecordingListener
from repro.sensors.samples import Chunk


def build_pickup_condition(manager: SidewinderSensorManager) -> ProcessingPipeline:
    """Tilt (smoothed z leaves the flat band) AND motion (x std rises)."""
    pipeline = ProcessingPipeline()
    # Branch 1: smoothed z gravity component below 9.2 m/s^2 => tilted.
    pipeline.add(
        ProcessingBranch(manager.ACCELEROMETER_Z)
        .add(MovingAverage(15))
        .add(BandIndicator(-20.0, 9.2))
    )
    # Branch 2: short-window x-axis standard deviation above the
    # stillness floor => the device is moving.
    pipeline.add(
        ProcessingBranch(manager.ACCELEROMETER_X)
        .add(Window(15, hop=1))
        .add(Statistic("std"))
        .add(BandIndicator(0.3, 1e9))
    )
    # Both must hold simultaneously.
    pipeline.add(MinOf())
    pipeline.add(MinThreshold(1.0))
    return pipeline


def synthesize(rng, seconds, rate=50.0):
    """A tabletop scene: stillness, then a pickup at t=6s."""
    n = int(seconds * rate)
    t = np.arange(n) / rate
    x = rng.normal(0, 0.03, n)
    z = 9.81 + rng.normal(0, 0.03, n)
    pickup = (t >= 6.0) & (t < 7.5)
    # Tilt: z gravity component eases toward 7 m/s^2.
    z[pickup] -= 2.8 * np.sin(np.pi * (t[pickup] - 6.0) / 1.5)
    z[t >= 7.5] -= 0.0
    # Motion: handling jitter on x.
    x[pickup] += rng.normal(0, 0.8, pickup.sum())
    return t, x, z


def main():
    manager = SidewinderSensorManager()
    listener = RecordingListener()
    handle = manager.push(build_pickup_condition(manager), listener)

    print("custom condition intermediate code:")
    print(handle.intermediate_code)
    print(f"placed on: {handle.mcu_name}")
    print()

    rng = np.random.default_rng(1)
    t, x, z = synthesize(rng, seconds=12.0)
    manager.hub.feed(
        {
            "ACC_X": Chunk.scalars(t, x, 50.0),
            "ACC_Z": Chunk.scalars(t, z, 50.0),
        }
    )
    if listener.events:
        print(f"{len(listener.events)} wake-up events; first at "
              f"t={listener.events[0].timestamp:.2f}s (pickup began at 6.0s)")
    else:
        print("no wake-ups (unexpected)")

    # Counter-test: sliding the phone across the table (motion without
    # tilt) must NOT wake the device.
    quiet_listener = RecordingListener()
    manager2 = SidewinderSensorManager()
    manager2.push(build_pickup_condition(manager2), quiet_listener)
    x2 = rng.normal(0, 0.8, 200)  # vigorous x motion
    z2 = 9.81 + rng.normal(0, 0.05, 200)  # still flat
    times = np.arange(200) / 50.0
    manager2.hub.feed(
        {
            "ACC_X": Chunk.scalars(times, x2, 50.0),
            "ACC_Z": Chunk.scalars(times, z2, 50.0),
        }
    )
    print(f"slide-without-tilt wake-ups: {len(quiet_listener.events)} "
          "(the conjunction filters pure motion)")


if __name__ == "__main__":
    main()
