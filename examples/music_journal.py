"""Music journal: two-branch wake-up condition plus a cloud service.

The condition combines an amplitude-variance branch with a sub-window
zero-crossing-rate-variance branch (Figure 3): sound must be present
*and* tonally stable.  On wake-up the application resolves the audio
against a (simulated) Echoprint service and journals the songs heard.

Run:  python examples/music_journal.py
"""

from repro.apps import MusicJournalApp
from repro.apps.cloud import SimulatedEchoprint
from repro.sim import Oracle, PredefinedActivity, Sidewinder
from repro.traces.audio import AudioEnvironment, AudioTraceConfig, generate_audio_trace


def main():
    trace = generate_audio_trace(
        AudioTraceConfig(AudioEnvironment.OFFICE, duration_s=600.0, seed=11)
    )
    music = trace.events_with_label("music")
    print(f"trace: {trace.name}")
    print(f"ground truth: {len(music)} songs, "
          f"{trace.event_seconds('music'):.0f}s of music, "
          f"{trace.event_seconds('speech'):.0f}s of speech")
    print()

    app = MusicJournalApp(service=SimulatedEchoprint())
    result = Sidewinder().run(app, trace)
    print(f"Sidewinder: {result.average_power_mw:.1f} mW, "
          f"recall {result.recall:.0%}, {result.wakeup_count} phone wake-ups, "
          f"{result.hub_wake_count} hub trigger events")
    print()
    print("music journal:")
    for time, song in app.journal:
        print(f"  {time:7.1f}s  {song}")
    print(f"(Echoprint queried {app.service.queries} times)")
    print()

    print("power comparison (the generic sound trigger wakes on speech too):")
    for config in (Oracle(), PredefinedActivity(), Sidewinder()):
        power = config.run(MusicJournalApp(), trace).average_power_mw
        print(f"  {config.name:<20s} {power:7.1f} mW")


if __name__ == "__main__":
    main()
