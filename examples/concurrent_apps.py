"""All six applications sharing one phone and one sensor hub.

The paper's future work asks how to support "multiple concurrent
applications while still maintaining predictable performance" and
suggests "combining the pipelines that use common algorithms".  This
example runs the three accelerometer apps concurrently on a robot trace
and the three audio apps on an audio trace, with pipeline merging on,
and compares against deploying each app on its own device.

Run:  python examples/concurrent_apps.py
"""

from repro.apps import (
    HeadbuttApp,
    MusicJournalApp,
    PhraseDetectionApp,
    SirenDetectorApp,
    StepsApp,
    TransitionsApp,
)
from repro.sim import ConcurrentSidewinder, Sidewinder
from repro.traces.audio import AudioEnvironment, AudioTraceConfig, generate_audio_trace
from repro.traces.robot import RobotRunConfig, generate_robot_run


def show(title, apps, trace):
    print(f"== {title}: {trace.name}")
    outcome = ConcurrentSidewinder(merge=True).run(apps, trace)
    for result in outcome.per_app:
        print(f"   {result.app_name:<18s} recall {result.recall:4.0%}  "
              f"precision {result.precision:4.0%}  "
              f"hub events {result.hub_wake_count}")
    separate = sum(
        Sidewinder().run(type(app)(), trace).average_power_mw for app in apps
    )
    print(f"   shared hub nodes saved by merging: {outcome.shared_nodes}")
    print(f"   hub processors: {', '.join(outcome.hub_processors)}")
    print(f"   one shared device: {outcome.device_power_mw:6.1f} mW "
          f"(vs {separate:6.1f} mW for {len(apps)} separate devices)")
    print()


def main():
    robot = generate_robot_run(RobotRunConfig(group=1, duration_s=600.0, seed=21))
    audio = generate_audio_trace(
        AudioTraceConfig(AudioEnvironment.COFFEE_SHOP, duration_s=600.0, seed=22)
    )
    show("accelerometer apps", [StepsApp(), TransitionsApp(), HeadbuttApp()], robot)
    show(
        "audio apps",
        [SirenDetectorApp(), MusicJournalApp(), PhraseDetectionApp()],
        audio,
    )


if __name__ == "__main__":
    main()
