"""Siren detection: the application that needs the bigger MCU.

The siren wake-up condition windows the microphone at 8 kHz, high-passes
at 750 Hz, runs an FFT per window and thresholds the dominant-frequency
prominence — too much for the MSP430, so the hub places it on the
LM4F120 (paper Section 4.3), which shows up as a ~46 mW tax in the
Sidewinder power figure.

Run:  python examples/siren_detection.py
"""

from repro.api.compile import compile_pipeline
from repro.apps import SirenDetectorApp
from repro.hub.feasibility import analyze
from repro.hub.mcu import LM4F120, MSP430
from repro.il.text import format_program
from repro.il.validate import validate_program
from repro.sim import Oracle, PredefinedActivity, Sidewinder
from repro.traces.audio import AudioEnvironment, AudioTraceConfig, generate_audio_trace


def main():
    app = SirenDetectorApp()
    program = compile_pipeline(app.build_wakeup_pipeline())
    print("Siren wake-up condition (intermediate code):")
    print(format_program(program))

    graph = validate_program(program)
    for mcu in (MSP430, LM4F120):
        report = analyze(graph, mcu)
        verdict = "feasible" if report.feasible else "NOT feasible"
        print(
            f"{mcu.name:<12s} load {report.utilization:7.1%} of budget "
            f"-> {verdict}"
        )
    print()

    trace = generate_audio_trace(
        AudioTraceConfig(AudioEnvironment.COFFEE_SHOP, duration_s=600.0, seed=3)
    )
    sirens = trace.events_with_label("siren")
    print(f"trace: {trace.name} with {len(sirens)} sirens "
          f"({trace.event_seconds('siren'):.0f}s total)")
    print()

    for config in (Oracle(), PredefinedActivity(), Sidewinder()):
        result = config.run(app, trace)
        hub = f" (hub: {', '.join(result.mcu_names)})" if result.mcu_names else ""
        print(
            f"{result.config_name:<20s} {result.average_power_mw:7.1f} mW, "
            f"recall {result.recall:.0%}, precision {result.precision:.0%}{hub}"
        )
    print()
    print("Sidewinder pays the LM4F120 tax here — the one case in the")
    print("paper where the generic Predefined Activity trigger is cheaper.")

    detections = app.detect(trace, [(0.0, trace.duration)])
    print()
    print("detected sirens:")
    for d in detections:
        print(f"  {d.time:7.1f}s - {d.end:7.1f}s  ({d.end - d.time:.1f}s)")


if __name__ == "__main__":
    main()
