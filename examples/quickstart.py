"""Quickstart: the paper's significant-motion wake-up condition.

Builds the exact pipeline of Figure 2a through the public API, shows
the intermediate code the sensor manager generates (Figure 2c), pushes
it to a simulated sensor hub, and feeds synthetic accelerometer data:
the listener only fires when the device is shaken.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.api import (
    MinThreshold,
    MovingAverage,
    ProcessingBranch,
    ProcessingPipeline,
    SidewinderSensorManager,
    VectorMagnitude,
)
from repro.api.listener import RecordingListener
from repro.sensors.samples import Chunk


def build_significant_motion(manager: SidewinderSensorManager) -> ProcessingPipeline:
    """The Figure 2a condition: smooth each axis, take the vector
    magnitude, wake when it reaches 15 m/s^2."""
    pipeline = ProcessingPipeline()
    for axis in (
        manager.ACCELEROMETER_X,
        manager.ACCELEROMETER_Y,
        manager.ACCELEROMETER_Z,
    ):
        pipeline.add(ProcessingBranch(axis).add(MovingAverage(10)))
    pipeline.add(VectorMagnitude())
    pipeline.add(MinThreshold(15))
    return pipeline


def feed_accelerometer(manager, x, y, z, t0=0.0, rate=50.0):
    """Deliver one round of 3-axis samples to the hub."""
    times = t0 + np.arange(len(x)) / rate
    manager.hub.feed(
        {
            "ACC_X": Chunk.scalars(times, x, rate),
            "ACC_Y": Chunk.scalars(times, y, rate),
            "ACC_Z": Chunk.scalars(times, z, rate),
        }
    )


def main():
    manager = SidewinderSensorManager()
    listener = RecordingListener()
    handle = manager.push(build_significant_motion(manager), listener)

    print("Intermediate code pushed to the hub:")
    print(handle.intermediate_code)
    print(f"Placed on: {handle.mcu_name}")
    print()

    rng = np.random.default_rng(0)
    # Four seconds of stillness: gravity on z plus sensor noise.
    n = 200
    feed_accelerometer(
        manager,
        rng.normal(0, 0.05, n),
        rng.normal(0, 0.05, n),
        9.81 + rng.normal(0, 0.05, n),
    )
    print(f"after stillness:  {len(listener.events)} wake-up events")

    # Two seconds of vigorous shaking.
    n = 100
    shake = 18.0 * np.sin(2 * np.pi * 3.0 * np.arange(n) / 50.0)
    feed_accelerometer(manager, shake, shake, shake + 9.81, t0=4.0)
    print(f"after shaking:    {len(listener.events)} wake-up events")
    first = listener.events[0]
    print(
        f"first wake-up at t={first.timestamp:.2f}s, magnitude "
        f"{first.value:.1f} m/s^2, raw buffer channels: "
        f"{sorted(first.raw_data)}"
    )


if __name__ == "__main__":
    main()
