"""A full synthetic day of step counting, with battery-life numbers.

Composes a day from the three human scenarios — morning commute, office
hours, retail errands — runs the step counter under each sensing
configuration, and projects continuous-sensing battery life on the
Nexus 4's battery.  This is the paper's motivating use case made
concrete: always-on sensing empties the phone within a day; Sidewinder
stretches it past a week.

Run:  python examples/full_day.py
"""

from repro.apps import StepsApp
from repro.power.battery import NEXUS4_BATTERY, lifetime_gain
from repro.sim import AlwaysAwake, Batching, DutyCycling, Oracle, PredefinedActivity, Sidewinder
from repro.traces.compose import concat_traces
from repro.traces.human import HumanScenario, HumanTraceConfig, generate_human_trace


def build_day():
    """Commute -> office -> retail, 10 minutes each (scaled day)."""
    segments = [
        generate_human_trace(HumanTraceConfig(scenario, duration_s=600.0, seed=31 + i))
        for i, scenario in enumerate(
            (HumanScenario.COMMUTE, HumanScenario.OFFICE, HumanScenario.RETAIL)
        )
    ]
    return concat_traces(segments, name="human/full-day")


def main():
    day = build_day()
    true_steps = sum(
        len(e.meta("step_times")) for e in day.events_with_label("walking")
    )
    print(f"trace: {day.name} ({day.duration / 60:.0f} min, "
          f"{true_steps} true steps)")
    for segment_name, start, end in day.metadata["segments"]:
        print(f"  {start / 60:4.0f}-{end / 60:3.0f} min  {segment_name}")
    print()

    print(f"{'configuration':<20s} {'power':>9s} {'recall':>7s} "
          f"{'steps':>6s} {'battery':>12s}")
    baseline = None
    for config in (
        AlwaysAwake(), DutyCycling(10.0), Batching(10.0),
        PredefinedActivity(), Sidewinder(), Oracle(),
    ):
        result = config.run(StepsApp(), day)
        counted = StepsApp.count_steps(result.detections)
        days = NEXUS4_BATTERY.days_at(result.average_power_mw)
        if baseline is None:
            baseline = result.average_power_mw
        print(
            f"{result.config_name:<20s} {result.average_power_mw:7.1f}mW "
            f"{result.recall:6.0%} {counted:6d} {days:9.1f} days"
        )

    sidewinder = Sidewinder().run(StepsApp(), day).average_power_mw
    print()
    print(f"Sidewinder multiplies battery life by "
          f"{lifetime_gain(baseline, sidewinder):.1f}x over Always Awake.")


if __name__ == "__main__":
    main()
