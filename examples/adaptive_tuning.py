"""Self-tuning wake-up conditions from application feedback.

The paper's Section 7 sketches a "smart" sensor hub: the application
reports false positives (wake-ups the precise detector rejected), and
the platform tightens the condition's threshold — but never past the
safety bound set by confirmed events, because a missed event could not
have been reported.

This example deploys a deliberately loose spike detector on a trace
where strong spikes (~10 m/s^2) are the events of interest and weaker
spikes (~4 m/s^2) are confounders.  :class:`repro.sim.AdaptiveSidewinder`
adapts it over five epochs: the threshold climbs, false positives
vanish, recall holds at 100 %, and the energy gap to a hand-tuned
deployment closes — with zero application-code changes, because the
sensor manager rewrites the pushed IL's threshold.

Run:  python examples/adaptive_tuning.py
"""

import numpy as np

from repro.api.branch import ProcessingBranch
from repro.api.pipeline import ProcessingPipeline
from repro.api.stubs import MinThreshold, MovingAverage
from repro.apps.base import Detection, SensingApplication
from repro.apps.detectors import iter_window_arrays, local_maxima
from repro.sim import AdaptiveSidewinder, Sidewinder
from repro.traces.base import GroundTruthEvent, Trace


class SpikeApp(SensingApplication):
    """Events are strong x-axis spikes; the wake-up condition starts
    loose enough to also fire on the weak confounder spikes."""

    name = "spikes"
    event_label = "spike"
    channels = ("ACC_X",)
    match_tolerance_s = 1.0

    def build_wakeup_pipeline(self):
        pipeline = ProcessingPipeline()
        pipeline.add(
            ProcessingBranch("ACC_X")
            .add(MovingAverage(3))
            .add(MinThreshold(2.0))  # deliberately loose
        )
        return pipeline

    def detect(self, trace, windows):
        detections = []
        rate = trace.rate_hz["ACC_X"]
        for start, samples in iter_window_arrays(trace, "ACC_X", windows):
            for idx in local_maxima(samples, 8.0, 100.0, int(rate)):
                detections.append(Detection(time=start + idx / rate, label="spike"))
        return detections


def spike_trace(duration=600.0, seed=9):
    """Strong spikes (events) alternating with weak confounders."""
    rate = 50.0
    rng = np.random.default_rng(seed)
    n = int(duration * rate)
    x = rng.normal(0, 0.05, n)
    events = []
    t, strong = 15.0, True
    while t < duration - 5:
        i = int(t * rate)
        x[i : i + 10] += (10.0 if strong else 4.0) * np.hanning(10)
        if strong:
            events.append(GroundTruthEvent.make("spike", t - 0.2, t + 0.4))
        strong = not strong
        t += 20.0 + rng.uniform(-2, 2)
    return Trace("synthetic/spikes", {"ACC_X": x}, {"ACC_X": rate}, duration, events)


def main():
    trace = spike_trace()
    print(f"trace: {trace.name}, {len(trace.events)} true events")
    print()

    static = Sidewinder().run(SpikeApp(), trace)
    print(f"static loose condition: {static.average_power_mw:6.1f} mW, "
          f"recall {static.recall:.0%}, {static.hub_wake_count} hub events")
    print()

    config = AdaptiveSidewinder(epochs=5)
    adaptive = config.run(SpikeApp(), trace)
    print("adaptation trajectory:")
    for report in config.last_reports:
        print(
            f"  epoch {report.epoch}: threshold {report.threshold:5.2f} | "
            f"wakes {report.wake_events:3d} | "
            f"false-positive rate {report.false_positive_rate:4.0%} | "
            f"next threshold {report.new_threshold:5.2f}"
        )
    print()
    print(f"adaptive condition:     {adaptive.average_power_mw:6.1f} mW, "
          f"recall {adaptive.recall:.0%}")
    saved = static.average_power_mw - adaptive.average_power_mw
    print(f"saved {saved:.1f} mW with zero application-code changes — the "
          "sensor manager rewrote the pushed IL's threshold.")


if __name__ == "__main__":
    main()
